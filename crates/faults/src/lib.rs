//! Deterministic fault-injection probes for the qTask workspace.
//!
//! The engine crates are threaded with named *probe sites*
//! (`fault_point!("exec/publish_row")`). A test arms a single
//! [`FaultPlan`] — site, [`FaultKind`], and which hit should fire — runs
//! the scenario, and disarms. Exactly one fault fires per armed plan, at
//! the Nth dynamic hit of the named site, which makes every chaos run
//! reproducible from `(site, kind, nth)` alone.
//!
//! ## Zero cost when compiled out
//!
//! The probe macros expand to a `#[cfg(feature = "faults")]`-gated call.
//! Because `cfg` attributes are resolved *after* macro expansion, the
//! feature consulted is the **consuming crate's** `faults` feature
//! (`qtask-core/faults`, `qtask-taskflow/faults`, …), not a feature of
//! this crate. A default build therefore contains no trace of the probes
//! — not even a branch. With the feature on but no plan armed, a probe
//! is one relaxed atomic load.
//!
//! ## Probe flavors
//!
//! | macro | injects | at sites that |
//! |-------|---------|---------------|
//! | [`fault_point!`] | panic / simulated alloc failure | can unwind |
//! | [`fault_point_err!`] | early `return Err(..)` (plus panic kinds) | return `Result` |
//! | [`fault_point_corrupt!`] | NaN/Inf via a caller closure (plus panic kinds) | write amplitudes |
//!
//! All sites honor [`FaultKind::Panic`] and [`FaultKind::AllocFail`]
//! (both unwind, with different messages); only `_err` sites honor
//! [`FaultKind::Error`] and only `_corrupt` sites honor the corruption
//! kinds. Arming an inapplicable kind at a site simply never fires —
//! the chaos driver uses [`site_hits`] traces to pair sites with the
//! kinds they support.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed [`FaultPlan`] injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the probe — models a logic bug mid-mutation.
    Panic,
    /// Simulated allocation failure: also unwinds, with an OOM-flavored
    /// message. Distinct from [`FaultKind::Panic`] so chaos reports can
    /// tell "logic bug" from "resource exhaustion" trajectories apart.
    AllocFail,
    /// Early typed-`Err` return (only at `fault_point_err!` sites).
    Error,
    /// Overwrite an amplitude with NaN (only at `fault_point_corrupt!`
    /// sites) — models a numerically broken kernel.
    CorruptNan,
    /// Overwrite an amplitude with +Inf (only at `fault_point_corrupt!`
    /// sites).
    CorruptInf,
}

/// One scheduled fault: fire `kind` at the `nth` dynamic hit (1-based)
/// of probe site `site`, and keep firing for `times` consecutive hits of
/// that site (hits `nth .. nth + times`). The default `times` of 1 is the
/// classic one-shot plan; larger values model *persistent* failures — a
/// recovery path that keeps failing — which is what trips circuit
/// breakers. After its last firing a plan stays armed only for
/// bookkeeping and never fires again until re-armed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub site: String,
    pub kind: FaultKind,
    pub nth: u64,
    /// Consecutive hits (starting at `nth`) that fire. 1 = one-shot.
    pub times: u64,
}

impl FaultPlan {
    /// A plan firing at the first hit of `site`.
    pub fn first(site: &str, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            site: site.to_string(),
            kind,
            nth: 1,
            times: 1,
        }
    }

    /// A plan firing at the `nth` hit of `site` (1-based; 0 is clamped
    /// to 1).
    pub fn at_hit(site: &str, kind: FaultKind, nth: u64) -> FaultPlan {
        FaultPlan {
            site: site.to_string(),
            kind,
            nth: nth.max(1),
            times: 1,
        }
    }

    /// A persistent-failure plan: fires at hits `nth .. nth + times` of
    /// `site` (both arguments clamped to at least 1). `times` larger than
    /// the hits actually reached simply stops firing when the scenario
    /// ends — [`DisarmSummary::fires`] reports how many landed.
    pub fn repeated(site: &str, kind: FaultKind, nth: u64, times: u64) -> FaultPlan {
        FaultPlan {
            site: site.to_string(),
            kind,
            nth: nth.max(1),
            times: times.max(1),
        }
    }

    /// Deterministically derives a plan from `seed`: picks a site from
    /// `sites` (a `(name, max_hits)` trace, e.g. from [`site_hits`]) and
    /// a hit index within that site's observed range. Only unwind-safe
    /// kinds are chosen, since they apply to every site.
    pub fn seeded(seed: u64, sites: &[(String, u64)]) -> Option<FaultPlan> {
        if sites.is_empty() {
            return None;
        }
        let mut s = splitmix64(seed);
        let (site, max_hits) = &sites[(s % sites.len() as u64) as usize];
        s = splitmix64(s);
        let nth = 1 + s % (*max_hits).max(1);
        s = splitmix64(s);
        let kind = if s.is_multiple_of(2) {
            FaultKind::Panic
        } else {
            FaultKind::AllocFail
        };
        Some(FaultPlan {
            site: site.clone(),
            kind,
            nth,
            times: 1,
        })
    }
}

/// What happened while a plan was armed, returned by [`disarm`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DisarmSummary {
    /// True if the armed fault fired at least once.
    pub fired: bool,
    /// How many hits actually fired (≤ the plan's `times`).
    pub fires: u64,
    /// Dynamic hits of the armed site while armed (counts even past the
    /// firing hit when the scenario survives the fault).
    pub hits_of_site: u64,
}

struct Registry {
    armed: Option<FaultPlan>,
    fires: u64,
    counts: HashMap<String, u64>,
    tracing: bool,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> MutexGuard<'static, Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry {
            armed: None,
            fires: 0,
            counts: HashMap::new(),
            tracing: false,
        })
    })
    .lock()
    // A panic injected *by* a probe never unwinds while the lock is
    // held, but a panicking observer elsewhere could; the registry is
    // plain data, so clearing poisoning is always sound.
    .unwrap_or_else(|e| e.into_inner())
}

/// Arms `plan`, replacing any previous plan and resetting all hit
/// counters.
pub fn arm(plan: FaultPlan) {
    let mut reg = registry();
    reg.counts.clear();
    reg.fires = 0;
    reg.armed = Some(plan);
    ACTIVE.store(true, Ordering::Release);
}

/// Disarms any armed plan and stops tracing. Returns what fired.
pub fn disarm() -> DisarmSummary {
    let mut reg = registry();
    let summary = DisarmSummary {
        fired: reg.fires > 0,
        fires: reg.fires,
        hits_of_site: reg
            .armed
            .as_ref()
            .and_then(|p| reg.counts.get(&p.site))
            .copied()
            .unwrap_or(0),
    };
    reg.armed = None;
    reg.fires = 0;
    reg.tracing = false;
    reg.counts.clear();
    ACTIVE.store(false, Ordering::Release);
    summary
}

/// Runs `f` with hit tracing on (no fault armed) and returns every probe
/// site it reached with its dynamic hit count, sorted by name. This is
/// how the chaos suite enumerates the injection space for a scenario.
pub fn site_hits(f: impl FnOnce()) -> Vec<(String, u64)> {
    {
        let mut reg = registry();
        reg.armed = None;
        reg.fires = 0;
        reg.counts.clear();
        reg.tracing = true;
        ACTIVE.store(true, Ordering::Release);
    }
    f();
    let mut reg = registry();
    reg.tracing = false;
    ACTIVE.store(false, Ordering::Release);
    let mut sites: Vec<(String, u64)> = reg.counts.drain().collect();
    sites.sort();
    sites
}

/// True if a plan is armed or tracing is on (the probe fast path).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Records a hit of `site` and returns the kind to inject, if the armed
/// plan fires on this very hit. Runtime support for the probe macros —
/// not meant to be called directly.
pub fn record_hit(site: &str) -> Option<FaultKind> {
    let mut reg = registry();
    if reg.armed.is_none() && !reg.tracing {
        return None;
    }
    let count = reg.counts.entry(site.to_string()).or_insert(0);
    *count += 1;
    let count = *count;
    match &reg.armed {
        Some(plan) if plan.site == site && count >= plan.nth && count < plan.nth + plan.times => {
            let kind = plan.kind;
            reg.fires += 1;
            Some(kind)
        }
        _ => None,
    }
}

/// Macro support: a hit that can only unwind. Panics for the unwind
/// kinds, ignores the rest (they don't apply to this site flavor).
#[inline]
pub fn hit(site: &str) {
    if !active() {
        return;
    }
    match record_hit(site) {
        Some(FaultKind::Panic) => panic!("injected panic at fault point '{site}'"),
        Some(FaultKind::AllocFail) => {
            panic!("injected allocation failure at fault point '{site}'")
        }
        _ => {}
    }
}

/// Macro support: a hit at a `Result` site. `true` means the caller must
/// return its injected error; the unwind kinds panic as in [`hit`].
#[inline]
pub fn hit_err(site: &str) -> bool {
    if !active() {
        return false;
    }
    match record_hit(site) {
        Some(FaultKind::Panic) => panic!("injected panic at fault point '{site}'"),
        Some(FaultKind::AllocFail) => {
            panic!("injected allocation failure at fault point '{site}'")
        }
        Some(FaultKind::Error) => true,
        _ => false,
    }
}

/// Macro support: a hit at an amplitude-writing site. Returns the
/// poison value to write for the corruption kinds; the unwind kinds
/// panic as in [`hit`].
#[inline]
pub fn hit_corrupt(site: &str) -> Option<f64> {
    if !active() {
        return None;
    }
    match record_hit(site) {
        Some(FaultKind::Panic) => panic!("injected panic at fault point '{site}'"),
        Some(FaultKind::AllocFail) => {
            panic!("injected allocation failure at fault point '{site}'")
        }
        Some(FaultKind::CorruptNan) => Some(f64::NAN),
        Some(FaultKind::CorruptInf) => Some(f64::INFINITY),
        _ => None,
    }
}

/// A probe site that can fail by unwinding ([`FaultKind::Panic`] /
/// [`FaultKind::AllocFail`]). Compiles to nothing unless the *calling*
/// crate's `faults` feature is on.
#[macro_export]
macro_rules! fault_point {
    ($site:literal) => {
        #[cfg(feature = "faults")]
        $crate::hit($site);
    };
}

/// A probe site on a `Result` path: [`FaultKind::Error`] makes the
/// enclosing function return `$err` early; the unwind kinds panic.
/// Compiles to nothing unless the calling crate's `faults` feature is
/// on.
#[macro_export]
macro_rules! fault_point_err {
    ($site:literal, $err:expr) => {
        #[cfg(feature = "faults")]
        {
            if $crate::hit_err($site) {
                return Err($err);
            }
        }
    };
}

/// A probe site that writes amplitudes: the corruption kinds hand a
/// non-finite `f64` to `$apply` (a `FnOnce(f64)` that smuggles it into
/// the data); the unwind kinds panic. Compiles to nothing unless the
/// calling crate's `faults` feature is on.
#[macro_export]
macro_rules! fault_point_corrupt {
    ($site:literal, $apply:expr) => {
        #[cfg(feature = "faults")]
        {
            if let Some(poison) = $crate::hit_corrupt($site) {
                let apply: &mut dyn FnMut(f64) = &mut { $apply };
                apply(poison);
            }
        }
    };
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test crate for qtask-faults itself has no `faults` feature, so
    // exercise the runtime API directly (the macros are covered by the
    // chaos suite at the workspace root).

    #[test]
    fn disarmed_probes_do_nothing() {
        assert!(!active());
        hit("nowhere");
        assert!(!hit_err("nowhere"));
        assert!(hit_corrupt("nowhere").is_none());
    }

    #[test]
    fn fires_exactly_once_at_nth_hit() {
        arm(FaultPlan::at_hit("site/a", FaultKind::Error, 3));
        assert!(!hit_err("site/a"));
        assert!(!hit_err("site/b"));
        assert!(!hit_err("site/a"));
        assert!(hit_err("site/a"));
        assert!(!hit_err("site/a")); // one-shot
        let summary = disarm();
        assert!(summary.fired);
        assert_eq!(summary.hits_of_site, 4);
    }

    #[test]
    fn repeated_plan_fires_for_a_window_of_hits() {
        arm(FaultPlan::repeated("site/r", FaultKind::Error, 2, 3));
        assert!(!hit_err("site/r")); // hit 1: before window
        assert!(hit_err("site/r")); // hits 2..=4: fire
        assert!(hit_err("site/r"));
        assert!(hit_err("site/r"));
        assert!(!hit_err("site/r")); // hit 5: window exhausted
        let summary = disarm();
        assert!(summary.fired);
        assert_eq!(summary.fires, 3);
        assert_eq!(summary.hits_of_site, 5);
    }

    #[test]
    fn panic_kind_unwinds_with_site_name() {
        arm(FaultPlan::first("site/p", FaultKind::Panic));
        let err = std::panic::catch_unwind(|| hit("site/p")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("site/p"), "{msg}");
        assert!(disarm().fired);
    }

    #[test]
    fn corrupt_kinds_yield_non_finite() {
        arm(FaultPlan::first("site/c", FaultKind::CorruptNan));
        assert!(hit_corrupt("site/c").unwrap().is_nan());
        disarm();
        arm(FaultPlan::first("site/c", FaultKind::CorruptInf));
        assert!(hit_corrupt("site/c").unwrap().is_infinite());
        disarm();
    }

    #[test]
    fn tracing_enumerates_sites() {
        let sites = site_hits(|| {
            hit("z/later");
            hit("a/early");
            hit("z/later");
        });
        assert_eq!(
            sites,
            vec![("a/early".to_string(), 1), ("z/later".to_string(), 2)]
        );
        assert!(!active());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let sites = vec![("a".to_string(), 5), ("b".to_string(), 2)];
        let p1 = FaultPlan::seeded(42, &sites).unwrap();
        let p2 = FaultPlan::seeded(42, &sites).unwrap();
        assert_eq!(p1, p2);
        for seed in 0..64 {
            let p = FaultPlan::seeded(seed, &sites).unwrap();
            let max = sites.iter().find(|(s, _)| *s == p.site).unwrap().1;
            assert!(p.nth >= 1 && p.nth <= max);
            assert!(matches!(p.kind, FaultKind::Panic | FaultKind::AllocFail));
        }
        assert!(FaultPlan::seeded(7, &[]).is_none());
    }
}
