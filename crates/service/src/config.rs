//! Service tunables: admission limits, deadlines, retry, breaker.

use std::time::Duration;

/// Retry schedule for retryable failures (see
/// [`crate::BackoffSchedule`]): exponential backoff from
/// [`RetryPolicy::base_delay`] capped at [`RetryPolicy::max_delay`],
/// with deterministic seeded jitter, for at most
/// [`RetryPolicy::max_retries`] attempts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry attempts before giving up.
    pub max_retries: u32,
    /// Nominal delay before the first retry; doubles each attempt.
    pub base_delay: Duration,
    /// Cap on any single (pre-jitter) delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
        }
    }
}

/// Tunables of a [`crate::SessionManager`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Maximum live (not yet closed) sessions; further
    /// [`crate::SessionManager::open`] calls are
    /// [`crate::ServiceError::Rejected`]. A failed session keeps its
    /// slot until closed — dead tenants must be reaped explicitly, not
    /// silently replaced.
    pub max_sessions: usize,
    /// Bounded mailbox depth per session. A full mailbox sheds new
    /// edits with [`crate::ServiceError::Overloaded`] (after the retry
    /// schedule) instead of queueing unboundedly.
    pub mailbox_capacity: usize,
    /// Per-session cap on concurrently submitted requests; beyond it,
    /// submissions are [`crate::ServiceError::Rejected`] immediately.
    pub inflight_quota: usize,
    /// Deadline for requests submitted without an explicit one.
    pub default_deadline: Duration,
    /// Backoff schedule for mailbox-full retries and between recovery
    /// attempts.
    pub retry: RetryPolicy,
    /// Circuit breaker: this many consecutive failed recoveries within
    /// [`ServiceConfig::breaker_window`] trips the session to the
    /// terminal `Failed` state.
    pub breaker_threshold: u32,
    /// Time window for counting consecutive recovery failures; failures
    /// further apart than this reset the count.
    pub breaker_window: Duration,
    /// Worker threads of the shared simulation executor (all sessions'
    /// engines multiplex over this one pool).
    pub num_threads: usize,
    /// Per-session cap on live view subscriptions
    /// ([`crate::SessionHandle::subscribe`]); beyond it, subscriptions
    /// are [`crate::ServiceError::Rejected`]. Dropping a subscription
    /// frees its slot at the writer's next publication.
    pub view_quota: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_sessions: 64,
            mailbox_capacity: 32,
            inflight_quota: 16,
            default_deadline: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            breaker_threshold: 3,
            breaker_window: Duration::from_secs(10),
            num_threads: qtask_taskflow::default_threads(),
            view_quota: 8,
        }
    }
}

impl ServiceConfig {
    /// This config with the given session limit.
    pub fn with_max_sessions(mut self, max_sessions: usize) -> ServiceConfig {
        self.max_sessions = max_sessions;
        self
    }

    /// This config with the given per-session mailbox depth (at least 1).
    pub fn with_mailbox_capacity(mut self, mailbox_capacity: usize) -> ServiceConfig {
        self.mailbox_capacity = mailbox_capacity.max(1);
        self
    }

    /// This config with the given per-session in-flight quota (at least 1).
    pub fn with_inflight_quota(mut self, inflight_quota: usize) -> ServiceConfig {
        self.inflight_quota = inflight_quota.max(1);
        self
    }

    /// This config with the given default request deadline.
    pub fn with_default_deadline(mut self, default_deadline: Duration) -> ServiceConfig {
        self.default_deadline = default_deadline;
        self
    }

    /// This config with the given retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ServiceConfig {
        self.retry = retry;
        self
    }

    /// This config with the given breaker threshold (at least 1).
    pub fn with_breaker(mut self, threshold: u32, window: Duration) -> ServiceConfig {
        self.breaker_threshold = threshold.max(1);
        self.breaker_window = window;
        self
    }

    /// This config with the given executor thread count (at least 1).
    pub fn with_threads(mut self, num_threads: usize) -> ServiceConfig {
        self.num_threads = num_threads.max(1);
        self
    }

    /// This config with the given per-session view-subscription quota
    /// (at least 1).
    pub fn with_view_quota(mut self, view_quota: usize) -> ServiceConfig {
        self.view_quota = view_quota.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let c = ServiceConfig::default();
        assert!(c.max_sessions >= 1);
        assert!(c.mailbox_capacity >= 1);
        assert!(c.breaker_threshold >= 1);
        let c = c
            .with_max_sessions(2)
            .with_mailbox_capacity(0)
            .with_inflight_quota(0)
            .with_default_deadline(Duration::from_millis(50))
            .with_breaker(0, Duration::from_secs(1))
            .with_threads(0)
            .with_view_quota(0);
        assert_eq!(c.max_sessions, 2);
        assert_eq!(c.mailbox_capacity, 1); // clamped
        assert_eq!(c.inflight_quota, 1); // clamped
        assert_eq!(c.breaker_threshold, 1); // clamped
        assert_eq!(c.num_threads, 1); // clamped
        assert_eq!(c.view_quota, 1); // clamped
        assert_eq!(c.default_deadline, Duration::from_millis(50));
    }
}
