//! The session manager: admission, multiplexing, lifecycle.

use crate::session::{Envelope, Shared, Supervisor};
use crate::{ServiceConfig, ServiceError, SessionHandle, SessionId, SessionReport, SessionState};
use qtask_core::{Ckt, SimConfig};
use qtask_taskflow::Executor;
use std::collections::HashMap;
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Entry {
    handle: SessionHandle,
    join: Option<JoinHandle<()>>,
}

/// Multiplexes many circuits (sessions) over one worker pool.
///
/// Each [`SessionManager::open`] admits a session (or rejects it at the
/// [`ServiceConfig::max_sessions`] limit), spawns its supervisor thread,
/// and hands back a cloneable [`SessionHandle`]. All sessions' engines
/// share the manager's [`Executor`], so simulation work from N writers
/// multiplexes over one set of worker threads; supervisor threads
/// themselves only orchestrate (receive, commit, publish) and block on
/// their mailboxes when idle.
///
/// Sibling isolation is structural: a session's quarantine, recovery,
/// or terminal failure touches nothing shared but the (stateless
/// between tasks) executor pool, so other sessions never observe it.
pub struct SessionManager {
    cfg: Arc<ServiceConfig>,
    executor: Arc<Executor>,
    inner: Mutex<Inner>,
}

struct Inner {
    next_id: u64,
    sessions: HashMap<u64, Entry>,
}

impl SessionManager {
    /// A manager with its own executor pool of
    /// [`ServiceConfig::num_threads`] workers.
    pub fn new(cfg: ServiceConfig) -> SessionManager {
        let executor = Arc::new(Executor::new(cfg.num_threads));
        SessionManager::with_executor(cfg, executor)
    }

    /// A manager multiplexing sessions over an existing pool.
    pub fn with_executor(cfg: ServiceConfig, executor: Arc<Executor>) -> SessionManager {
        SessionManager {
            cfg: Arc::new(cfg),
            executor,
            inner: Mutex::new(Inner {
                next_id: 1,
                sessions: HashMap::new(),
            }),
        }
    }

    /// The shared simulation pool.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Sessions currently holding a slot (everything not yet closed —
    /// failed sessions count until reaped with [`SessionManager::close`]).
    pub fn live_sessions(&self) -> usize {
        lock(&self.inner)
            .sessions
            .values()
            .filter(|e| e.handle.state() != SessionState::Closed)
            .count()
    }

    /// Admits a new session simulating `num_qubits` qubits under
    /// `sim_config`, spawns its supervised writer, and blocks until the
    /// baseline snapshot is published (so the returned handle serves
    /// reads immediately and request ordering is deterministic).
    ///
    /// Admission control: at the [`ServiceConfig::max_sessions`] limit
    /// this is [`ServiceError::Rejected`] — nothing is spawned. A
    /// session whose engine is broken at birth is still *admitted* (it
    /// holds a slot); its health is observable via
    /// [`SessionHandle::state`] and the watchdog/breaker run as usual.
    pub fn open(
        &self,
        num_qubits: u8,
        sim_config: SimConfig,
    ) -> Result<SessionHandle, ServiceError> {
        let mut inner = lock(&self.inner);
        let live = inner
            .sessions
            .values()
            .filter(|e| e.handle.state() != SessionState::Closed)
            .count();
        if live >= self.cfg.max_sessions {
            return Err(ServiceError::Rejected {
                reason: format!("session limit of {} reached", self.cfg.max_sessions),
            });
        }
        let id = SessionId(inner.next_id);
        inner.next_id += 1;
        let shared = Arc::new(Shared::new(id));
        let (tx, rx) = sync_channel(self.cfg.mailbox_capacity);
        let mut ckt = Ckt::with_executor(num_qubits, sim_config, Arc::clone(&self.executor));
        let views = crate::push::ViewFanout::attach(&mut ckt, self.cfg.view_quota);
        let supervisor = Supervisor {
            ckt,
            rx,
            shared: Arc::clone(&shared),
            cfg: Arc::clone(&self.cfg),
            views,
        };
        let join = std::thread::Builder::new()
            .name(format!("qtask-session-{}", id.0))
            .spawn(move || supervisor.run())
            .expect("spawn session supervisor thread");
        let handle = SessionHandle {
            tx,
            shared,
            cfg: Arc::clone(&self.cfg),
        };
        inner.sessions.insert(
            id.0,
            Entry {
                handle: handle.clone(),
                join: Some(join),
            },
        );
        drop(inner);
        handle.wait_for(|s| s != SessionState::Admitted, self.cfg.default_deadline);
        Ok(handle)
    }

    /// A fresh handle to an open session.
    pub fn session(&self, id: SessionId) -> Option<SessionHandle> {
        lock(&self.inner)
            .sessions
            .get(&id.0)
            .map(|e| e.handle.clone())
    }

    /// Closes a session: asks its writer to stop, joins the supervisor
    /// thread, frees the slot, and returns the final autopsy. Works on
    /// failed sessions too (that is how their slot is reaped); the
    /// report then still shows `Failed`.
    pub fn close(&self, id: SessionId) -> Result<SessionReport, ServiceError> {
        let mut entry =
            lock(&self.inner)
                .sessions
                .remove(&id.0)
                .ok_or_else(|| ServiceError::Rejected {
                    reason: format!("unknown session {id}"),
                })?;
        // Blocking send: a busy writer drains its queue first, a dead
        // one has dropped the receiver (send fails, which is fine).
        let _ = entry.handle.tx.send(Envelope::close());
        if let Some(join) = entry.join.take() {
            let _ = join.join();
        }
        Ok(entry.handle.report())
    }

    /// Closes every session (see [`SessionManager::close`]) and returns
    /// the autopsies, ordered by session id.
    pub fn shutdown(&self) -> Vec<SessionReport> {
        let ids: Vec<u64> = {
            let inner = lock(&self.inner);
            let mut ids: Vec<u64> = inner.sessions.keys().copied().collect();
            ids.sort_unstable();
            ids
        };
        ids.into_iter()
            .filter_map(|id| self.close(SessionId(id)).ok())
            .collect()
    }

    /// Autopsies of every open session, ordered by session id.
    pub fn reports(&self) -> Vec<SessionReport> {
        let inner = lock(&self.inner);
        let mut reports: Vec<SessionReport> =
            inner.sessions.values().map(|e| e.handle.report()).collect();
        reports.sort_by_key(|r| r.session);
        reports
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        // Best-effort close; never block in Drop (a caller-held handle
        // clone with a full mailbox could otherwise pin us forever).
        // Writers whose Close did not fit exit anyway once the last
        // handle drops and their mailbox disconnects.
        let inner = lock(&self.inner);
        for entry in inner.sessions.values() {
            let _ = entry.handle.tx.try_send(Envelope::close());
        }
    }
}
