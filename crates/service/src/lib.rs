//! Supervised multi-session simulation service.
//!
//! The MVCC reader/writer split (`qtask-core`) lets any number of
//! threads read version *v* while one writer builds *v+1* — but edits
//! still serialize on `&mut Ckt`. This crate is the service layer that
//! split was designed for: a [`SessionManager`] multiplexes many
//! circuits (*sessions*) over one worker pool; each session is owned by
//! a supervised writer task that receives transactions over a bounded
//! mailbox and publishes versioned snapshots.
//!
//! Robustness is the point, threaded through every layer:
//!
//! - **Admission control** — [`ServiceConfig::max_sessions`] bounds the
//!   tenant count, [`ServiceConfig::inflight_quota`] bounds each
//!   tenant's concurrency; violations are typed
//!   [`ServiceError::Rejected`], never unbounded queueing.
//! - **Deadlines & retry** — every request is bounded end to end; the
//!   mailbox-full path retries on a deterministic seeded
//!   [`BackoffSchedule`] (reproducible from its seed, bounded by the
//!   deadline) and then sheds with [`ServiceError::Overloaded`];
//!   non-retryable failures surface immediately.
//! - **Backpressure, graceful degradation** — mailboxes are bounded;
//!   when a writer lags or is quarantined, new edits shed while
//!   [`SessionHandle::snapshot`] keeps serving the last published
//!   version: reads degrade to *stale*, never to torn or blocked.
//! - **Supervision** — each writer runs under a watchdog: a panic or a
//!   poisoned engine quarantines the session and runs
//!   [`qtask_core::Ckt::recover`] under a circuit breaker
//!   ([`ServiceConfig::breaker_threshold`] consecutive failures within
//!   [`ServiceConfig::breaker_window`] trip the terminal `Failed` state
//!   with a [`SessionReport`] autopsy). Sibling sessions share nothing
//!   that failure can reach, so they are never disturbed.
//!
//! Session lifecycle (see `DESIGN.md` §"Service & supervision"):
//! `Admitted → Active → (Quarantined → Recovered | Failed)* → Closed`.
//!
//! With the `faults` feature, the service path carries three probe
//! sites — `service/enqueue`, `service/writer`, `service/recover` — so
//! the chaos suite (`tests/chaos_service.rs`) can kill writers
//! mid-transaction and assert the service heals.

mod backoff;
mod config;
mod error;
mod manager;
mod push;
mod session;

pub use backoff::BackoffSchedule;
pub use config::{RetryPolicy, ServiceConfig};
pub use error::ServiceError;
pub use manager::SessionManager;
pub use push::{RecvError, Subscription, ViewUpdate};
pub use session::{EditOutcome, SessionHandle, SessionId, SessionReport, SessionState};
// Convenience re-exports: subscribing needs the query/value vocabulary.
pub use qtask_views::{ViewQuery, ViewReport, ViewValue};

#[cfg(test)]
mod tests {
    use super::*;
    use qtask_core::SimConfig;
    use qtask_gates::GateKind;
    use std::time::Duration;

    fn small_cfg() -> ServiceConfig {
        ServiceConfig::default()
            .with_threads(2)
            .with_default_deadline(Duration::from_secs(10))
    }

    #[test]
    fn open_edit_read_close_roundtrip() {
        let mgr = SessionManager::new(small_cfg());
        let h = mgr.open(3, SimConfig::default()).unwrap();
        assert_eq!(h.state(), SessionState::Active);
        let baseline = h.snapshot().expect("baseline snapshot");
        assert_eq!(baseline.amplitude(0).re, 1.0);
        let out = h
            .edit(|tx| {
                let net = tx.push_net();
                tx.insert_gate(GateKind::X, net, &[0])?;
                Ok(())
            })
            .unwrap();
        assert_eq!(out.receipt.gates_inserted, 1);
        assert!(out.version > baseline.version());
        let snap = h.snapshot().unwrap();
        assert_eq!(snap.version(), out.version);
        assert_eq!(snap.amplitude(1).re, 1.0); // |001⟩
        let report = mgr.close(h.id()).unwrap();
        assert_eq!(report.state, SessionState::Closed);
        assert_eq!(report.edits_ok, 1);
        // The handle outlives the close with typed errors, and the
        // degraded-read surface still serves the last version.
        assert!(matches!(
            h.edit(|_| Ok(())),
            Err(ServiceError::SessionClosed { .. })
        ));
        assert_eq!(h.snapshot().unwrap().version(), out.version);
    }

    #[test]
    fn session_limit_rejects_then_frees_on_close() {
        let mgr = SessionManager::new(small_cfg().with_max_sessions(2));
        let a = mgr.open(2, SimConfig::default()).unwrap();
        let _b = mgr.open(2, SimConfig::default()).unwrap();
        assert_eq!(mgr.live_sessions(), 2);
        let err = mgr.open(2, SimConfig::default()).unwrap_err();
        assert!(matches!(err, ServiceError::Rejected { .. }), "{err}");
        mgr.close(a.id()).unwrap();
        assert!(mgr.open(2, SimConfig::default()).is_ok());
        mgr.shutdown();
        assert_eq!(mgr.live_sessions(), 0);
    }

    #[test]
    fn invalid_transaction_is_typed_and_state_unchanged() {
        let mgr = SessionManager::new(small_cfg());
        let h = mgr.open(2, SimConfig::default()).unwrap();
        let v0 = h.version();
        let err = h
            .edit(|tx| {
                let net = tx.push_net();
                tx.insert_gate(GateKind::X, net, &[0])?;
                tx.insert_gate(GateKind::H, net, &[9])?; // out of range
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::Engine(_)), "{err}");
        assert_eq!(h.version(), v0);
        assert_eq!(h.sync().unwrap(), v0);
        let (circuit, _) = h.circuit().unwrap();
        assert_eq!(circuit.num_gates(), 0); // transaction fully rolled back
        mgr.shutdown();
    }

    #[test]
    fn panicked_writer_is_quarantined_and_recovers() {
        let mgr = SessionManager::new(small_cfg());
        let h = mgr.open(3, SimConfig::default()).unwrap();
        h.edit(|tx| {
            let net = tx.push_net();
            tx.insert_gate(GateKind::H, net, &[1])?;
            Ok(())
        })
        .unwrap();
        let v = h.version();
        let before = h.snapshot().unwrap();
        // A panicking client closure kills the writer mid-request.
        let err = h
            .edit(|_| panic!("client bug in edit closure"))
            .unwrap_err();
        assert!(matches!(err, ServiceError::SessionPoisoned { .. }), "{err}");
        let state = h.wait_for(
            |s| matches!(s, SessionState::Recovered | SessionState::Failed),
            Duration::from_secs(30),
        );
        assert_eq!(state, SessionState::Recovered);
        // The circuit survived (panic hit staging, not the engine) and
        // the session serves again; versions stay monotonic.
        let out = h
            .edit(|tx| {
                let net = tx.push_net();
                tx.insert_gate(GateKind::X, net, &[0])?;
                Ok(())
            })
            .unwrap();
        assert!(out.version > v);
        let after = h.snapshot().unwrap();
        assert!(after.version() > before.version());
        let report = mgr.close(h.id()).unwrap();
        assert_eq!(report.recoveries, 1);
        assert!(!report.breaker_tripped);
        assert!(report.last_error.unwrap().contains("client bug"));
    }

    #[test]
    fn breaker_trips_to_failed_without_disturbing_sibling() {
        let mgr = SessionManager::new(small_cfg().with_breaker(2, Duration::from_secs(10)));
        let sibling = mgr.open(2, SimConfig::default()).unwrap();
        sibling
            .edit(|tx| {
                let net = tx.push_net();
                tx.insert_gate(GateKind::X, net, &[1])?;
                Ok(())
            })
            .unwrap();
        let sib_snap = sibling.snapshot().unwrap();
        // An impossible norm tolerance makes every publish — including
        // every recovery's — fail: deterministic breaker trip, no fault
        // injection needed.
        let broken = SimConfig {
            norm_tolerance: -1.0,
            ..SimConfig::default()
        };
        let h = mgr.open(2, broken).unwrap();
        let state = h.wait_for(|s| s == SessionState::Failed, Duration::from_secs(30));
        assert_eq!(state, SessionState::Failed);
        let report = h.report();
        assert!(report.breaker_tripped);
        assert_eq!(report.recovery_failures, 2);
        assert!(report.last_error.is_some());
        // Requests now get the terminal typed error.
        assert!(matches!(
            h.edit(|_| Ok(())),
            Err(ServiceError::SessionFailed { .. })
        ));
        // The sibling never noticed.
        assert_eq!(sibling.state(), SessionState::Active);
        let now = sibling.snapshot().unwrap();
        assert_eq!(now.version(), sib_snap.version());
        assert!(sibling.edit(|_| Ok(())).is_ok());
        let autopsy = mgr.close(h.id()).unwrap();
        assert_eq!(autopsy.state, SessionState::Failed);
        mgr.shutdown();
    }

    #[test]
    fn quota_and_overload_shed_typed() {
        let mgr = SessionManager::new(
            small_cfg()
                .with_mailbox_capacity(1)
                .with_inflight_quota(1)
                .with_retry(RetryPolicy {
                    max_retries: 2,
                    base_delay: Duration::from_millis(1),
                    max_delay: Duration::from_millis(2),
                }),
        );
        let h = mgr.open(2, SimConfig::default()).unwrap();
        let slow = h.clone();
        let worker = std::thread::spawn(move || {
            slow.edit(|_| {
                std::thread::sleep(Duration::from_millis(400));
                Ok(())
            })
        });
        std::thread::sleep(Duration::from_millis(100)); // writer is now busy
                                                        // Quota of 1 is held by the slow edit → immediate rejection.
        let err = h.edit(|_| Ok(())).unwrap_err();
        assert!(matches!(err, ServiceError::Rejected { .. }), "{err}");
        // Reads keep serving while the writer lags.
        assert!(h.snapshot().is_some());
        assert!(worker.join().unwrap().is_ok());
        let report = h.report();
        assert_eq!(report.shed, 1);
        mgr.shutdown();
    }

    #[test]
    fn deadline_times_out_but_work_completes_late() {
        let mgr = SessionManager::new(small_cfg());
        let h = mgr.open(2, SimConfig::default()).unwrap();
        let err = h
            .edit_with_deadline(
                |tx| {
                    std::thread::sleep(Duration::from_millis(300));
                    let net = tx.push_net();
                    tx.insert_gate(GateKind::X, net, &[0])?;
                    Ok(())
                },
                Duration::from_millis(30),
                7,
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::Timeout { .. }), "{err}");
        // The writer still finished the edit after the caller gave up.
        let v = h.sync().unwrap();
        assert!(v >= 2);
        assert_eq!(h.snapshot().unwrap().amplitude(1).re, 1.0);
        assert_eq!(h.report().timeouts, 1);
        mgr.shutdown();
    }

    #[test]
    fn subscription_streams_updates_and_counts_maintenance() {
        let mgr = SessionManager::new(small_cfg());
        let h = mgr.open(3, SimConfig::default()).unwrap();
        let sub = h
            .subscribe(ViewQuery::Marginal { qubits: vec![0] })
            .unwrap();
        // Primed from the baseline |000⟩ snapshot.
        let first = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(first.value.as_vector().unwrap(), &[1.0, 0.0]);

        h.edit(|tx| {
            let net = tx.push_net();
            tx.insert_gate(GateKind::H, net, &[0])?;
            Ok(())
        })
        .unwrap();
        let update = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(update.version > first.version);
        let dist = update.value.as_vector().unwrap();
        assert!((dist[0] - 0.5).abs() < 1e-10 && (dist[1] - 0.5).abs() < 1e-10);

        let report = h.view_report().unwrap();
        assert_eq!(report.views, 1);
        assert!(report.full_refreshes >= 1, "priming rescans");
        mgr.shutdown();
        // Shutdown closes the channel; blocked receivers wake typed.
        assert_eq!(
            sub.recv_timeout(Duration::from_secs(5)).unwrap_err(),
            RecvError::Closed
        );
    }

    #[test]
    fn view_quota_rejects_then_drop_frees_the_slot() {
        let mgr = SessionManager::new(small_cfg().with_view_quota(1));
        let h = mgr.open(2, SimConfig::default()).unwrap();
        let sub = h.subscribe(ViewQuery::Norm).unwrap();
        let err = h.subscribe(ViewQuery::Norm).unwrap_err();
        assert!(matches!(err, ServiceError::Rejected { .. }), "{err}");
        // Invalid queries are rejected without consuming quota.
        let err = h
            .subscribe(ViewQuery::Probability { basis: 1 << 10 })
            .unwrap_err();
        assert!(matches!(err, ServiceError::Rejected { .. }), "{err}");
        drop(sub);
        // The writer prunes closed subscriptions at the next touch.
        assert!(h.subscribe(ViewQuery::Norm).is_ok());
        mgr.shutdown();
    }

    #[test]
    fn slow_subscriber_lags_to_latest_without_blocking_writer() {
        let mgr = SessionManager::new(small_cfg());
        let h = mgr.open(2, SimConfig::default()).unwrap();
        let sub = h.subscribe(ViewQuery::Probability { basis: 1 }).unwrap();
        // Consume the primed baseline so lag counts only overwrites.
        let _ = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        for _ in 0..4 {
            h.edit(|tx| {
                let net = tx.push_net();
                tx.insert_gate(GateKind::X, net, &[0])?;
                Ok(())
            })
            .unwrap();
        }
        // Never consumed in between: the slot holds only the newest
        // value, and the writer finished all four edits regardless.
        let last = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(last.version, h.version());
        assert_eq!(sub.lagged(), 3);
        // 4 X gates: back to |00⟩, P(|01⟩) = 0.
        assert_eq!(last.value.as_scalar().unwrap(), 0.0);
        assert!(sub.try_recv().is_none());
        mgr.shutdown();
    }

    #[test]
    fn subscription_survives_writer_recovery() {
        let mgr = SessionManager::new(small_cfg());
        let h = mgr.open(3, SimConfig::default()).unwrap();
        let sub = h.subscribe(ViewQuery::Norm).unwrap();
        let first = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(first.value.as_scalar().unwrap(), 1.0);
        // Kill the writer mid-request; the watchdog heals the engine and
        // recovery re-primes every view from the republished snapshot.
        let err = h.edit(|_| panic!("injected writer kill")).unwrap_err();
        assert!(matches!(err, ServiceError::SessionPoisoned { .. }), "{err}");
        let state = h.wait_for(
            |s| matches!(s, SessionState::Recovered | SessionState::Failed),
            Duration::from_secs(30),
        );
        assert_eq!(state, SessionState::Recovered);
        h.edit(|tx| {
            let net = tx.push_net();
            tx.insert_gate(GateKind::H, net, &[1])?;
            Ok(())
        })
        .unwrap();
        let update = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(update.version, h.version());
        assert!((update.value.as_scalar().unwrap() - 1.0).abs() < 1e-10);
        mgr.shutdown();
    }

    #[test]
    fn sessions_share_one_executor_pool() {
        let mgr = SessionManager::new(small_cfg());
        let before = mgr.executor().tasks_run();
        let handles: Vec<_> = (0..4)
            .map(|_| mgr.open(4, SimConfig::default()).unwrap())
            .collect();
        for h in &handles {
            h.edit(|tx| {
                let net = tx.push_net();
                for q in 0..4 {
                    tx.insert_gate(GateKind::H, net, &[q])?;
                }
                Ok(())
            })
            .unwrap();
        }
        assert!(
            mgr.executor().tasks_run() > before,
            "session work must run on the shared pool"
        );
        for r in mgr.shutdown() {
            assert_eq!(r.state, SessionState::Closed);
            assert_eq!(r.edits_ok, 1);
        }
    }
}
