//! Push delivery for incremental view subscriptions.
//!
//! A [`Subscription`] is the client end of a capacity-one
//! overwrite-latest channel: the writer deposits each new
//! [`ViewUpdate`] into the slot without ever blocking — if the client
//! has not consumed the previous update it is overwritten and the
//! subscription's `lagged` counter advances. Clients that keep up see
//! every version; clients that fall behind always resume at the *newest*
//! value (never a stale backlog), which is the right degradation for a
//! dashboard-style consumer.

use crate::{ServiceError, SessionId};
use qtask_core::Ckt;
use qtask_views::{ViewHandle, ViewQuery, ViewRegistry, ViewValue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One pushed view value, stamped with the snapshot version it reflects.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewUpdate {
    /// Version of the published snapshot this value was maintained to.
    pub version: u64,
    /// The view's value at that version.
    pub value: ViewValue,
}

/// Why [`Subscription::recv_timeout`] returned without an update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No update arrived within the timeout; the subscription is still
    /// live.
    Timeout,
    /// The subscription was closed (session closed, failed, or the
    /// subscription itself was dropped); no further updates will arrive.
    Closed,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "no view update within the timeout"),
            RecvError::Closed => write!(f, "subscription closed"),
        }
    }
}

impl std::error::Error for RecvError {}

struct SlotState {
    latest: Option<ViewUpdate>,
    closed: bool,
}

/// The capacity-one channel shared by the writer (producer) and one
/// [`Subscription`] (consumer).
pub(crate) struct PushSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
    lagged: AtomicU64,
}

impl PushSlot {
    fn new() -> Arc<PushSlot> {
        Arc::new(PushSlot {
            state: Mutex::new(SlotState {
                latest: None,
                closed: false,
            }),
            cv: Condvar::new(),
            lagged: AtomicU64::new(0),
        })
    }

    /// Deposits `update`, overwriting an unconsumed predecessor (counted
    /// as lag). Never blocks on the consumer.
    pub(crate) fn push(&self, update: ViewUpdate) {
        let mut state = lock(&self.state);
        if state.closed {
            return;
        }
        if state.latest.replace(update).is_some() {
            self.lagged.fetch_add(1, Ordering::Relaxed);
            qtask_obs::counter!("views.push_lagged").inc();
        }
        qtask_obs::counter!("views.pushed").inc();
        drop(state);
        self.cv.notify_all();
    }

    /// Marks the channel closed and wakes any blocked consumer. Both
    /// ends may call this (writer on close/failure, consumer on drop).
    pub(crate) fn close(&self) {
        lock(&self.state).closed = true;
        self.cv.notify_all();
    }

    pub(crate) fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }
}

/// Client end of one view subscription (see [`crate::SessionHandle::subscribe`]).
///
/// Dropping the subscription closes the channel; the writer prunes the
/// underlying view at its next publication, freeing the quota slot.
pub struct Subscription {
    session: SessionId,
    query: ViewQuery,
    slot: Arc<PushSlot>,
}

impl Subscription {
    /// The session this subscription reads from.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The subscribed query.
    pub fn query(&self) -> &ViewQuery {
        &self.query
    }

    /// Takes the latest unconsumed update, if any, without blocking.
    pub fn try_recv(&self) -> Option<ViewUpdate> {
        lock(&self.slot.state).latest.take()
    }

    /// Blocks until an update arrives (or `timeout` elapses / the
    /// channel closes). An update deposited before the call is returned
    /// immediately — the slot is level-triggered, not edge-triggered.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<ViewUpdate, RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = lock(&self.slot.state);
        loop {
            if let Some(update) = state.latest.take() {
                return Ok(update);
            }
            if state.closed {
                return Err(RecvError::Closed);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(RecvError::Timeout);
            }
            let (guard, _) = self
                .slot
                .cv
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Updates overwritten before this client consumed them. A growing
    /// value means the client reads slower than the writer publishes;
    /// the values it does see are always the newest.
    pub fn lagged(&self) -> u64 {
        self.slot.lagged.load(Ordering::Relaxed)
    }

    /// True once the writer (or this end) closed the channel. A final
    /// unconsumed update may still be pending in [`Subscription::try_recv`].
    pub fn is_closed(&self) -> bool {
        self.slot.is_closed()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.slot.close();
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("session", &self.session)
            .field("query", &self.query)
            .field("lagged", &self.lagged())
            .field("closed", &self.is_closed())
            .finish()
    }
}

struct SubEntry {
    handle: Option<ViewHandle>,
    slot: Arc<PushSlot>,
    last_pushed: u64,
}

/// Writer-side state of a session's subscriptions: the [`ViewRegistry`]
/// attached to the session's engine plus one [`SubEntry`] per live
/// subscription. Owned by the supervisor thread; nothing here is shared
/// except the per-subscription slots.
pub(crate) struct ViewFanout {
    registry: ViewRegistry,
    subs: Vec<SubEntry>,
    quota: usize,
}

impl ViewFanout {
    /// A fanout whose registry is attached to `ckt`; `quota` bounds the
    /// session's live subscriptions.
    pub(crate) fn attach(ckt: &mut Ckt, quota: usize) -> ViewFanout {
        let registry = ViewRegistry::new();
        registry.attach(ckt);
        ViewFanout {
            registry,
            subs: Vec::new(),
            quota,
        }
    }

    /// Drops entries whose client end closed, unregistering their views
    /// so later publications stop paying for them.
    fn prune(&mut self) {
        self.subs.retain_mut(|entry| {
            if entry.slot.is_closed() {
                if let Some(handle) = entry.handle.take() {
                    handle.unregister();
                }
                false
            } else {
                true
            }
        });
    }

    /// Registers `query` as a maintained view and returns the client end.
    /// Runs on the writer thread (quota and registration are naturally
    /// serialized with publications).
    pub(crate) fn subscribe(
        &mut self,
        ckt: &Ckt,
        session: SessionId,
        query: ViewQuery,
    ) -> Result<Subscription, ServiceError> {
        self.prune();
        if self.subs.len() >= self.quota {
            return Err(ServiceError::Rejected {
                reason: format!("session {session} view quota of {} exhausted", self.quota),
            });
        }
        let view = query
            .build(ckt.num_qubits())
            .map_err(|e| ServiceError::Rejected {
                reason: format!("invalid view query: {e}"),
            })?;
        let handle = self.registry.register_on(ckt, view);
        let slot = PushSlot::new();
        let mut last_pushed = 0;
        if let Some(reading) = handle.reading() {
            last_pushed = reading.version;
            slot.push(ViewUpdate {
                version: reading.version,
                value: reading.value,
            });
        }
        self.subs.push(SubEntry {
            handle: Some(handle),
            slot: Arc::clone(&slot),
            last_pushed,
        });
        qtask_obs::counter!("views.subscribed").inc();
        Ok(Subscription {
            session,
            query,
            slot,
        })
    }

    /// Pushes every view's current reading to its subscriber (skipping
    /// versions already delivered). Called by the writer after each
    /// publication and after recovery.
    pub(crate) fn push_all(&mut self) {
        self.prune();
        for entry in &mut self.subs {
            let Some(handle) = entry.handle.as_ref() else {
                continue;
            };
            let Some(reading) = handle.reading() else {
                continue;
            };
            if reading.version <= entry.last_pushed {
                continue;
            }
            entry.last_pushed = reading.version;
            entry.slot.push(ViewUpdate {
                version: reading.version,
                value: reading.value,
            });
        }
    }

    /// Closes every subscription channel (session close or terminal
    /// failure): blocked consumers wake with [`RecvError::Closed`].
    pub(crate) fn close_all(&mut self) {
        for entry in &self.subs {
            entry.slot.close();
        }
        self.prune();
    }

    /// The registry's maintenance counters for this session.
    pub(crate) fn report(&self) -> qtask_views::ViewReport {
        self.registry.report()
    }
}
