//! Typed service errors.
//!
//! Every way a request can fail has a variant, so callers can tell
//! *shed* work (admission control, backpressure, deadlines — the
//! request never touched the session's circuit) from *session health*
//! failures (a quarantined, failed, or closed writer). Retryability is
//! a property of the variant: [`ServiceError::is_retryable`] is what a
//! client loop should consult before re-submitting with backoff.

use crate::SessionId;
use qtask_core::EngineError;
use std::time::Duration;

/// Error type of the service API surface.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Admission control refused the work before queueing it: the
    /// session limit or the per-session in-flight quota is exhausted
    /// (or the target session does not exist). Nothing was enqueued.
    Rejected {
        /// Which limit refused the work.
        reason: String,
    },
    /// The session's bounded mailbox stayed full through every retry of
    /// the backoff schedule — the writer is lagging. The edit was shed;
    /// snapshot reads keep serving the last published version.
    Overloaded {
        /// The lagging session.
        session: SessionId,
        /// Its mailbox capacity (every slot was occupied).
        mailbox: usize,
    },
    /// The per-request deadline elapsed before the writer replied. The
    /// request may still complete afterwards — the deadline bounds the
    /// caller's wait, not the writer's work.
    Timeout {
        /// The slow session.
        session: SessionId,
        /// How long the caller actually waited.
        waited: Duration,
    },
    /// The session's writer panicked or its engine poisoned itself while
    /// (or before) handling this request. The watchdog quarantines the
    /// session and runs recovery; reads keep serving the last published
    /// snapshot, and the request is retryable once the session heals.
    SessionPoisoned {
        /// The quarantined session.
        session: SessionId,
        /// The poison/panic reason.
        reason: String,
    },
    /// The circuit breaker tripped: repeated recovery failures put the
    /// session in the terminal `Failed` state. Only
    /// [`crate::SessionManager::close`] (for the autopsy
    /// [`crate::SessionReport`]) is useful now.
    SessionFailed {
        /// The dead session.
        session: SessionId,
    },
    /// The session was closed; its writer has exited.
    SessionClosed {
        /// The closed session.
        session: SessionId,
    },
    /// The engine rejected the transaction (validation failure, numeric
    /// policy, …) without poisoning itself — the session keeps serving
    /// and the circuit is exactly as before the request.
    Engine(EngineError),
    /// An error injected by an armed `qtask_faults` plan (test builds
    /// with the `faults` feature only). Observable state is unchanged.
    Injected {
        /// The probe site that fired.
        site: String,
    },
}

impl ServiceError {
    /// An [`ServiceError::Injected`] for probe site `site`.
    pub fn injected(site: &str) -> ServiceError {
        ServiceError::Injected {
            site: site.to_string(),
        }
    }

    /// True when re-submitting the same request (after backoff) can
    /// succeed: the failure was load or a recoverable writer death, not
    /// a property of the request or a terminal session state.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::Overloaded { .. }
                | ServiceError::Timeout { .. }
                | ServiceError::SessionPoisoned { .. }
        )
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> ServiceError {
        ServiceError::Engine(e)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rejected { reason } => write!(f, "admission rejected: {reason}"),
            ServiceError::Overloaded { session, mailbox } => write!(
                f,
                "session {session} overloaded: mailbox of {mailbox} stayed full through backoff"
            ),
            ServiceError::Timeout { session, waited } => write!(
                f,
                "session {session} missed the deadline (waited {waited:?})"
            ),
            ServiceError::SessionPoisoned { session, reason } => write!(
                f,
                "session {session} quarantined: {reason} (recovery in progress; retry later)"
            ),
            ServiceError::SessionFailed { session } => write!(
                f,
                "session {session} failed terminally (circuit breaker tripped)"
            ),
            ServiceError::SessionClosed { session } => write!(f, "session {session} is closed"),
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::Injected { site } => {
                write!(f, "injected error at fault point '{site}'")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_retryability_and_source() {
        let sid = SessionId(7);
        let e = ServiceError::Overloaded {
            session: sid,
            mailbox: 4,
        };
        assert!(e.is_retryable());
        assert!(e.to_string().contains("mailbox"));
        let e = ServiceError::Timeout {
            session: sid,
            waited: Duration::from_millis(10),
        };
        assert!(e.is_retryable());
        let e = ServiceError::SessionPoisoned {
            session: sid,
            reason: "task panicked".into(),
        };
        assert!(e.is_retryable());
        assert!(e.to_string().contains("quarantined"));
        for e in [
            ServiceError::Rejected {
                reason: "quota".into(),
            },
            ServiceError::SessionFailed { session: sid },
            ServiceError::SessionClosed { session: sid },
            ServiceError::injected("service/enqueue"),
        ] {
            assert!(!e.is_retryable(), "{e}");
        }
        let e: ServiceError = EngineError::injected("x").into();
        assert!(!e.is_retryable());
        assert!(std::error::Error::source(&e).is_some());
    }
}
