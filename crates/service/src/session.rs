//! One supervised session: a writer task owning a [`Ckt`], its bounded
//! mailbox, and the watchdog that heals it.
//!
//! The writer runs on a dedicated supervisor thread inside
//! `catch_unwind`. A poisoned engine or a panicked request quarantines
//! the session; the supervisor then runs [`Ckt::recover`] under a
//! circuit breaker (consecutive failures within a window trip the
//! session to terminal `Failed`). Throughout quarantine and recovery,
//! [`SessionHandle::snapshot`] keeps serving the last *published*
//! [`StateSnapshot`] — reads degrade to staleness, never to torn data
//! or a wedge.

use crate::backoff::BackoffSchedule;
use crate::push::{Subscription, ViewFanout};
use crate::{ServiceConfig, ServiceError};
use qtask_circuit::{Circuit, CircuitError};
use qtask_core::{Ckt, EditReceipt, EditTxn, StateSnapshot};
use qtask_views::{ViewQuery, ViewReport};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Opaque session identifier, unique within one [`crate::SessionManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Lifecycle state of a session:
/// `Admitted → Active → (Quarantined → Recovered | Failed)* → Closed`.
/// `Recovered` serves exactly like `Active` (it is kept distinct so the
/// autopsy shows the session healed at least once); `Failed` and
/// `Closed` are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Admission succeeded; the writer has not published its baseline
    /// snapshot yet.
    Admitted,
    /// Serving, never quarantined.
    Active,
    /// The writer panicked or its engine poisoned itself; the watchdog
    /// is running recovery. Edits queue (or shed); reads serve the last
    /// published snapshot.
    Quarantined,
    /// Serving again after at least one successful recovery.
    Recovered,
    /// Terminal: the circuit breaker tripped (too many failed
    /// recoveries). Reads still serve the last published snapshot.
    Failed,
    /// Terminal: closed by the client (or every handle was dropped).
    Closed,
}

impl SessionState {
    /// True for states in which the writer accepts new requests.
    pub fn is_serving(self) -> bool {
        matches!(
            self,
            SessionState::Admitted
                | SessionState::Active
                | SessionState::Quarantined
                | SessionState::Recovered
        )
    }
}

/// What a committed service edit produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditOutcome {
    /// The transaction's [`EditReceipt`].
    pub receipt: EditReceipt,
    /// Snapshot version published after the edit (readers at this
    /// version or later see the edit).
    pub version: u64,
}

/// Autopsy of a session, available at any time via
/// [`SessionHandle::report`] and returned by
/// [`crate::SessionManager::close`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// The session.
    pub session: SessionId,
    /// Lifecycle state at report time.
    pub state: SessionState,
    /// Edits committed and published.
    pub edits_ok: u64,
    /// Edits that reached the writer and failed (typed error; circuit
    /// unchanged).
    pub edits_failed: u64,
    /// Requests shed before reaching the writer (quota, overload).
    pub shed: u64,
    /// Requests whose caller gave up waiting (the writer may have
    /// completed them late).
    pub timeouts: u64,
    /// Successful recoveries.
    pub recoveries: u64,
    /// Failed recovery attempts.
    pub recovery_failures: u64,
    /// True once the circuit breaker tripped (state is then `Failed`).
    pub breaker_tripped: bool,
    /// Most recent poison/panic/recovery-failure reason.
    pub last_error: Option<String>,
    /// Version of the last published snapshot.
    pub last_version: u64,
    /// The failed writer's final trace events (rendered, oldest first),
    /// captured from its thread-local ring buffer at quarantine. Empty
    /// unless the `obs` feature is enabled and the session was
    /// quarantined at least once.
    pub recent_trace: Vec<String>,
}

/// std mutexes poison on panic; all service state behind them is plain
/// data (counters, enums, snapshots), so clearing poisoning is sound.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[derive(Default)]
struct Stats {
    edits_ok: AtomicU64,
    edits_failed: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    recoveries: AtomicU64,
    recovery_failures: AtomicU64,
    breaker_tripped: AtomicBool,
}

/// Per-session handles into the global `qtask-obs` registry, labeled
/// `{session="<id>"}`. Interned once at session creation; every update
/// afterwards is lock-free. The [`Stats`] atomics and these counters
/// are bumped at the same sites, so [`SessionReport`] and
/// [`qtask_obs::MetricsSnapshot`] can never disagree.
struct SessionMetrics {
    edits_ok: &'static qtask_obs::Counter,
    edits_failed: &'static qtask_obs::Counter,
    shed: &'static qtask_obs::Counter,
    timeouts: &'static qtask_obs::Counter,
    recoveries: &'static qtask_obs::Counter,
    recovery_failures: &'static qtask_obs::Counter,
    backoff_sleeps: &'static qtask_obs::Counter,
    mailbox_depth: &'static qtask_obs::Gauge,
    queue_delay_us: &'static qtask_obs::Histogram,
}

impl SessionMetrics {
    fn new(id: SessionId) -> SessionMetrics {
        let reg = qtask_obs::registry();
        let v = id.0.to_string();
        let l = Some(("session", v.as_str()));
        SessionMetrics {
            edits_ok: reg.counter_with("service.edits_ok", l),
            edits_failed: reg.counter_with("service.edits_failed", l),
            shed: reg.counter_with("service.shed", l),
            timeouts: reg.counter_with("service.timeouts", l),
            recoveries: reg.counter_with("service.recoveries", l),
            recovery_failures: reg.counter_with("service.recovery_failures", l),
            backoff_sleeps: reg.counter_with("service.backoff_sleeps", l),
            mailbox_depth: reg.gauge_with("service.mailbox_depth", l),
            queue_delay_us: reg.histogram_with("service.queue_delay_us", l),
        }
    }
}

/// State shared between the supervisor thread and every handle clone.
pub(crate) struct Shared {
    id: SessionId,
    state: Mutex<SessionState>,
    state_cv: Condvar,
    /// The last published snapshot — the degraded-read surface. Written
    /// only by the supervisor thread; read by any number of clients.
    latest: RwLock<Option<StateSnapshot>>,
    inflight: AtomicUsize,
    stats: Stats,
    metrics: SessionMetrics,
    last_error: Mutex<Option<String>>,
    recent_trace: Mutex<Vec<String>>,
}

impl Shared {
    pub(crate) fn new(id: SessionId) -> Shared {
        Shared {
            id,
            state: Mutex::new(SessionState::Admitted),
            state_cv: Condvar::new(),
            latest: RwLock::new(None),
            inflight: AtomicUsize::new(0),
            stats: Stats::default(),
            metrics: SessionMetrics::new(id),
            last_error: Mutex::new(None),
            recent_trace: Mutex::new(Vec::new()),
        }
    }

    fn state(&self) -> SessionState {
        *lock(&self.state)
    }

    fn set_state(&self, s: SessionState) {
        *lock(&self.state) = s;
        self.state_cv.notify_all();
    }

    fn wait_state(&self, pred: impl Fn(SessionState) -> bool, timeout: Duration) -> SessionState {
        let guard = lock(&self.state);
        let (guard, _timed_out) = self
            .state_cv
            .wait_timeout_while(guard, timeout, |s| !pred(*s))
            .unwrap_or_else(|e| e.into_inner());
        *guard
    }

    fn publish(&self, snap: StateSnapshot) {
        *self.latest.write().unwrap_or_else(|e| e.into_inner()) = Some(snap);
    }

    fn snapshot(&self) -> Option<StateSnapshot> {
        self.latest
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn version(&self) -> u64 {
        self.snapshot().map(|s| s.version()).unwrap_or(0)
    }

    fn note_error(&self, reason: String) {
        *lock(&self.last_error) = Some(reason);
    }

    // The note_* methods feed the per-call [`Stats`] atomic and the
    // registry counters (per-session label + service-wide aggregate)
    // from the same increment, so the autopsy and the registry stay in
    // lockstep by construction.

    fn note_edit_ok(&self) {
        self.stats.edits_ok.fetch_add(1, Ordering::Relaxed);
        self.metrics.edits_ok.inc();
        qtask_obs::counter!("service.edits_ok").inc();
    }

    fn note_edit_failed(&self) {
        self.stats.edits_failed.fetch_add(1, Ordering::Relaxed);
        self.metrics.edits_failed.inc();
        qtask_obs::counter!("service.edits_failed").inc();
    }

    fn note_shed(&self) {
        self.stats.shed.fetch_add(1, Ordering::Relaxed);
        self.metrics.shed.inc();
        qtask_obs::counter!("service.shed").inc();
    }

    fn note_timeout(&self) {
        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        self.metrics.timeouts.inc();
        qtask_obs::counter!("service.timeouts").inc();
    }

    fn note_recovery(&self) {
        self.stats.recoveries.fetch_add(1, Ordering::Relaxed);
        self.metrics.recoveries.inc();
        qtask_obs::counter!("service.recoveries").inc();
    }

    fn note_recovery_failure(&self) {
        self.stats.recovery_failures.fetch_add(1, Ordering::Relaxed);
        self.metrics.recovery_failures.inc();
        qtask_obs::counter!("service.recovery_failures").inc();
    }

    fn note_backoff_sleep(&self) {
        self.metrics.backoff_sleeps.inc();
        qtask_obs::counter!("service.backoff_sleeps").inc();
    }

    fn note_enqueued(&self) {
        self.metrics.mailbox_depth.inc();
        qtask_obs::gauge!("service.mailbox_depth").inc();
    }

    fn note_dequeued(&self, queued_for: Duration) {
        self.metrics.mailbox_depth.dec();
        qtask_obs::gauge!("service.mailbox_depth").dec();
        let us = queued_for.as_micros().min(u128::from(u64::MAX)) as u64;
        self.metrics.queue_delay_us.record(us);
        qtask_obs::histogram!("service.queue_delay_us").record(us);
    }

    /// Captures the current thread's last trace events into the autopsy.
    /// Called by the supervisor right after its writer loop died — the
    /// supervisor thread *is* the writer thread, so its thread-local
    /// ring holds the failure's immediate history. No-op without `obs`.
    fn capture_recent_trace(&self) {
        #[cfg(feature = "obs")]
        {
            let rendered: Vec<String> = qtask_obs::recent_thread_events(32)
                .iter()
                .map(qtask_obs::TraceEvent::render)
                .collect();
            *lock(&self.recent_trace) = rendered;
        }
    }

    fn report(&self) -> SessionReport {
        SessionReport {
            session: self.id,
            state: self.state(),
            edits_ok: self.stats.edits_ok.load(Ordering::Relaxed),
            edits_failed: self.stats.edits_failed.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            timeouts: self.stats.timeouts.load(Ordering::Relaxed),
            recoveries: self.stats.recoveries.load(Ordering::Relaxed),
            recovery_failures: self.stats.recovery_failures.load(Ordering::Relaxed),
            breaker_tripped: self.stats.breaker_tripped.load(Ordering::Relaxed),
            last_error: lock(&self.last_error).clone(),
            last_version: self.version(),
            recent_trace: lock(&self.recent_trace).clone(),
        }
    }
}

type EditFn = Box<dyn FnOnce(&mut EditTxn<'_>) -> Result<(), CircuitError> + Send>;

pub(crate) enum Request {
    Edit {
        op: EditFn,
        reply: SyncSender<Result<EditOutcome, ServiceError>>,
    },
    /// Barrier: replies with the current version once every earlier
    /// request has been processed.
    Sync {
        reply: SyncSender<u64>,
    },
    /// Clone of the session's circuit (for oracles/resims) plus the
    /// version it corresponds to.
    Inspect {
        reply: SyncSender<(Circuit, u64)>,
    },
    /// Register an incremental view subscription on the writer's
    /// registry (quota-checked and primed on the writer thread, so it
    /// serializes naturally with publications).
    Subscribe {
        query: ViewQuery,
        reply: SyncSender<Result<Subscription, ServiceError>>,
    },
    /// The session's view-maintenance counters.
    ViewReport {
        reply: SyncSender<ViewReport>,
    },
    Close,
}

impl Request {
    /// Trace span name for processing this request kind.
    ///
    /// Only evaluated when the `obs` feature is on (the span macro
    /// compiles its argument away otherwise).
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    fn span_name(&self) -> &'static str {
        match self {
            Request::Edit { .. } => "session/edit",
            Request::Sync { .. } => "session/sync",
            Request::Inspect { .. } => "session/inspect",
            Request::Subscribe { .. } => "session/subscribe",
            Request::ViewReport { .. } => "session/view_report",
            Request::Close => "session/close",
        }
    }
}

/// What actually travels through the mailbox: the request plus its
/// enqueue timestamp, so the writer can price enqueue→execute queueing
/// delay. Lifecycle `Close` messages (manager close/drop) skip the
/// depth/delay accounting — only client requests do backpressure.
pub(crate) struct Envelope {
    pub(crate) req: Request,
    enqueued_at: Instant,
}

impl Envelope {
    fn new(req: Request) -> Envelope {
        Envelope {
            req,
            enqueued_at: Instant::now(),
        }
    }

    /// A lifecycle close message (not counted as queue load).
    pub(crate) fn close() -> Envelope {
        Envelope::new(Request::Close)
    }
}

/// RAII bracket for the per-session in-flight quota.
struct QuotaGuard<'a> {
    shared: &'a Shared,
}

impl<'a> QuotaGuard<'a> {
    fn acquire(shared: &'a Shared, quota: usize) -> Result<QuotaGuard<'a>, ServiceError> {
        if shared.inflight.fetch_add(1, Ordering::AcqRel) >= quota {
            shared.inflight.fetch_sub(1, Ordering::AcqRel);
            shared.note_shed();
            return Err(ServiceError::Rejected {
                reason: format!("session {} in-flight quota of {quota} exhausted", shared.id),
            });
        }
        Ok(QuotaGuard { shared })
    }
}

impl Drop for QuotaGuard<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Client handle to one session. Cheap to clone; every clone talks to
/// the same supervised writer. Dropping all handles (manager's
/// included) closes the session.
#[derive(Clone)]
pub struct SessionHandle {
    pub(crate) tx: SyncSender<Envelope>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) cfg: Arc<ServiceConfig>,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("id", &self.shared.id)
            .field("state", &self.shared.state())
            .field("version", &self.shared.version())
            .finish()
    }
}

impl SessionHandle {
    /// The session's id.
    pub fn id(&self) -> SessionId {
        self.shared.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.shared.state()
    }

    /// Blocks until `pred` holds for the session state (or `timeout`
    /// elapses) and returns the state observed last.
    pub fn wait_for(&self, pred: impl Fn(SessionState) -> bool, timeout: Duration) -> SessionState {
        self.shared.wait_state(pred, timeout)
    }

    /// The last published [`StateSnapshot`] — the degraded-read path.
    /// Never blocks on the writer: during quarantine, recovery, and even
    /// terminal failure this keeps serving the newest consistent
    /// version.
    pub fn snapshot(&self) -> Option<StateSnapshot> {
        self.shared.snapshot()
    }

    /// Version of the last published snapshot (0 before the baseline).
    pub fn version(&self) -> u64 {
        self.shared.version()
    }

    /// The session's autopsy so far.
    pub fn report(&self) -> SessionReport {
        self.shared.report()
    }

    /// Submits a transactional edit with the configured default
    /// deadline, seeding retry jitter from the session id.
    pub fn edit<F>(&self, f: F) -> Result<EditOutcome, ServiceError>
    where
        F: FnOnce(&mut EditTxn<'_>) -> Result<(), CircuitError> + Send + 'static,
    {
        self.edit_with_deadline(f, self.cfg.default_deadline, self.shared.id.0)
    }

    /// Submits a transactional edit, bounded by `deadline` end to end
    /// (mailbox retries included). `seed` determinizes the backoff
    /// jitter — callers retrying the same logical request should reuse
    /// their seed to reproduce the schedule.
    ///
    /// Failure modes, all typed and all leaving the circuit unchanged:
    /// [`ServiceError::Rejected`] (quota), [`ServiceError::Overloaded`]
    /// (mailbox full through backoff), [`ServiceError::Timeout`] (writer
    /// too slow — the edit may still commit late),
    /// [`ServiceError::Engine`] (transaction invalid),
    /// [`ServiceError::SessionPoisoned`] (writer died mid-request; the
    /// watchdog is recovering it).
    pub fn edit_with_deadline<F>(
        &self,
        f: F,
        deadline: Duration,
        seed: u64,
    ) -> Result<EditOutcome, ServiceError>
    where
        F: FnOnce(&mut EditTxn<'_>) -> Result<(), CircuitError> + Send + 'static,
    {
        let _quota = QuotaGuard::acquire(&self.shared, self.cfg.inflight_quota)?;
        self.call(
            |reply| Request::Edit {
                op: Box::new(f),
                reply,
            },
            deadline,
            seed,
        )?
    }

    /// Waits until the writer has processed every request submitted
    /// before this call; returns the then-current version.
    pub fn sync(&self) -> Result<u64, ServiceError> {
        self.call(
            |reply| Request::Sync { reply },
            self.cfg.default_deadline,
            self.shared.id.0,
        )
    }

    /// A clone of the session's circuit and the version it corresponds
    /// to — the resimulation oracle for consistency checks.
    pub fn circuit(&self) -> Result<(Circuit, u64), ServiceError> {
        self.call(
            |reply| Request::Inspect { reply },
            self.cfg.default_deadline,
            self.shared.id.0,
        )
    }

    /// Subscribes to `query` as an incrementally maintained view: the
    /// writer registers it on the session's [`qtask_views::ViewRegistry`],
    /// primes it from the latest snapshot, and pushes a [`crate::ViewUpdate`]
    /// after every publication — over a capacity-one overwrite-latest
    /// channel, so a slow subscriber lags (counted) but never blocks the
    /// writer.
    ///
    /// Fails with [`ServiceError::Rejected`] when the query is invalid
    /// for the session's register or the per-session
    /// [`ServiceConfig::view_quota`] is exhausted (dropping a
    /// [`Subscription`] frees its slot at the writer's next publication).
    pub fn subscribe(&self, query: ViewQuery) -> Result<Subscription, ServiceError> {
        self.call(
            |reply| Request::Subscribe { query, reply },
            self.cfg.default_deadline,
            self.shared.id.0,
        )?
    }

    /// The session's view-maintenance counters ([`ViewReport`]): patches
    /// vs full refreshes, blocks repatched vs rescanned.
    pub fn view_report(&self) -> Result<ViewReport, ServiceError> {
        self.call(
            |reply| Request::ViewReport { reply },
            self.cfg.default_deadline,
            self.shared.id.0,
        )
    }

    /// A terminal-state error matching the session's current state.
    fn terminal_error(&self) -> ServiceError {
        match self.shared.state() {
            SessionState::Failed => ServiceError::SessionFailed {
                session: self.shared.id,
            },
            _ => ServiceError::SessionClosed {
                session: self.shared.id,
            },
        }
    }

    /// Shared submit mechanics: admission by state, probe, bounded
    /// enqueue with seeded backoff, reply wait bounded by the deadline.
    fn call<T>(
        &self,
        make: impl FnOnce(SyncSender<T>) -> Request,
        deadline: Duration,
        seed: u64,
    ) -> Result<T, ServiceError> {
        let state = self.shared.state();
        if !state.is_serving() {
            return Err(self.terminal_error());
        }
        qtask_faults::fault_point_err!(
            "service/enqueue",
            ServiceError::injected("service/enqueue")
        );
        let start = Instant::now();
        // Reply capacity 1: the writer's send never blocks, even when
        // the caller has already timed out and dropped the receiver.
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        let mut env = Envelope::new(make(reply_tx));
        let mut backoff = BackoffSchedule::new(&self.cfg.retry, seed, deadline);
        loop {
            match self.tx.try_send(env) {
                Ok(()) => {
                    self.shared.note_enqueued();
                    break;
                }
                Err(TrySendError::Full(r)) => {
                    match backoff.next() {
                        Some(delay) => {
                            self.shared.note_backoff_sleep();
                            std::thread::sleep(delay);
                        }
                        None => {
                            self.shared.note_shed();
                            return Err(ServiceError::Overloaded {
                                session: self.shared.id,
                                mailbox: self.cfg.mailbox_capacity,
                            });
                        }
                    }
                    // Re-stamp: queueing delay is measured from the
                    // send that actually succeeds.
                    env = Envelope::new(r.req);
                }
                Err(TrySendError::Disconnected(_)) => return Err(self.terminal_error()),
            }
        }
        let remaining = deadline.saturating_sub(start.elapsed());
        match reply_rx.recv_timeout(remaining) {
            Ok(value) => Ok(value),
            Err(RecvTimeoutError::Timeout) => {
                self.shared.note_timeout();
                Err(ServiceError::Timeout {
                    session: self.shared.id,
                    waited: start.elapsed(),
                })
            }
            // The writer dropped the request without replying: it died
            // mid-request and the watchdog took over.
            Err(RecvTimeoutError::Disconnected) => Err(ServiceError::SessionPoisoned {
                session: self.shared.id,
                reason: lock(&self.shared.last_error)
                    .clone()
                    .unwrap_or_else(|| "writer task terminated mid-request".to_string()),
            }),
        }
    }
}

/// Why the writer loop returned.
enum LoopExit {
    /// Close requested, or every handle was dropped.
    Closed,
    /// The engine poisoned itself; quarantine and recover.
    Poisoned(String),
}

/// The supervisor owning one session's engine and mailbox; runs on a
/// dedicated thread ([`crate::SessionManager::open`] spawns it).
pub(crate) struct Supervisor {
    pub(crate) ckt: Ckt,
    pub(crate) rx: Receiver<Envelope>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) cfg: Arc<ServiceConfig>,
    /// View subscriptions: the registry attached to `ckt` plus the push
    /// slot of each live subscriber.
    pub(crate) views: ViewFanout,
}

impl Supervisor {
    pub(crate) fn run(mut self) {
        // Baseline publish: leave `Admitted` only once readers have a
        // consistent |0…0⟩ snapshot to degrade to. A config broken at
        // birth (e.g. an impossible norm tolerance) goes straight into
        // the quarantine → breaker path instead.
        match self.ckt.try_snapshot() {
            Ok(snap) => {
                self.shared.publish(snap);
                self.shared.set_state(SessionState::Active);
            }
            Err(e) => {
                self.shared.note_error(e.to_string());
                self.shared.set_state(SessionState::Quarantined);
                if !self.heal() {
                    self.fail_and_drain();
                    return;
                }
            }
        }
        loop {
            let exit = catch_unwind(AssertUnwindSafe(|| {
                writer_loop(&mut self.ckt, &self.rx, &self.shared, &mut self.views)
            }));
            let reason = match exit {
                Ok(LoopExit::Closed) => {
                    self.views.close_all();
                    self.shared.set_state(SessionState::Closed);
                    return;
                }
                Ok(LoopExit::Poisoned(reason)) => reason,
                Err(payload) => panic_text(payload.as_ref()),
            };
            // The writer just died on this very thread: its last trace
            // events are still in this thread's ring. Attach them to
            // the autopsy before recovery overwrites the ring.
            self.shared.capture_recent_trace();
            qtask_obs::event!("session/quarantine");
            self.shared.note_error(reason);
            self.shared.set_state(SessionState::Quarantined);
            if !self.heal() {
                self.fail_and_drain();
                return;
            }
        }
    }

    /// Watchdog: recover the engine under the circuit breaker. Returns
    /// false when the breaker trips ([`ServiceConfig::breaker_threshold`]
    /// consecutive failures within [`ServiceConfig::breaker_window`]).
    fn heal(&mut self) -> bool {
        let _heal_span = qtask_obs::span!("session/heal");
        let mut failures = 0u32;
        let mut window_start = Instant::now();
        let mut backoff = BackoffSchedule::new(
            &self.cfg.retry,
            self.shared.id.0 ^ self.shared.stats.recoveries.load(Ordering::Relaxed),
            self.cfg.breaker_window,
        );
        loop {
            match attempt_recovery(&mut self.ckt) {
                Ok(()) => {
                    self.shared.note_recovery();
                    if let Some(snap) = self.ckt.latest_snapshot() {
                        self.shared.publish(snap);
                    }
                    // recover() carried the view registry across and
                    // full-refreshed every view from the republished
                    // snapshot; subscribers get the healed values now.
                    self.views.push_all();
                    self.shared.set_state(SessionState::Recovered);
                    return true;
                }
                Err(e) => {
                    self.shared.note_recovery_failure();
                    self.shared.note_error(e.to_string());
                    if window_start.elapsed() > self.cfg.breaker_window {
                        failures = 0;
                        window_start = Instant::now();
                    }
                    failures += 1;
                    if failures >= self.cfg.breaker_threshold {
                        return false;
                    }
                    if let Some(delay) = backoff.next() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }

    /// Breaker tripped: mark terminal `Failed`, answer everything still
    /// queued with [`ServiceError::SessionFailed`], and exit (dropping
    /// the mailbox, so later submissions see a disconnect and map it to
    /// the same typed error).
    fn fail_and_drain(&mut self) {
        self.shared
            .stats
            .breaker_tripped
            .store(true, Ordering::Relaxed);
        qtask_obs::counter!("service.breaker_tripped").inc();
        qtask_obs::event!("session/breaker_trip");
        self.views.close_all();
        self.shared.set_state(SessionState::Failed);
        let failed = ServiceError::SessionFailed {
            session: self.shared.id,
        };
        for env in self.rx.try_iter() {
            if !matches!(env.req, Request::Close) {
                self.shared.note_dequeued(env.enqueued_at.elapsed());
            }
            match env.req {
                Request::Edit { reply, .. } => {
                    let _ = reply.send(Err(failed.clone()));
                }
                Request::Subscribe { reply, .. } => {
                    let _ = reply.send(Err(failed.clone()));
                }
                // Sync/Inspect/ViewReport replies are dropped: their
                // callers get a disconnect, mapped to the session's
                // terminal state.
                Request::Sync { .. }
                | Request::Inspect { .. }
                | Request::ViewReport { .. }
                | Request::Close => {}
            }
        }
        // Requests that never get consumed (the mailbox dies with this
        // thread) must not leave the depth gauge dangling.
        self.shared.metrics.mailbox_depth.set(0);
    }
}

/// One recovery attempt, panic-contained: an unwind out of the recovery
/// path itself (probe or rebuild) must count as a *failed attempt* for
/// the breaker, never kill the supervisor thread.
fn attempt_recovery(ckt: &mut Ckt) -> Result<(), ServiceError> {
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<(), ServiceError> {
        qtask_faults::fault_point_err!(
            "service/recover",
            ServiceError::injected("service/recover")
        );
        ckt.recover().map_err(ServiceError::Engine)?;
        Ok(())
    }));
    match result {
        Ok(r) => r,
        Err(payload) => Err(ServiceError::Engine(
            qtask_core::EngineError::RecoveryFailed {
                reason: panic_text(payload.as_ref()),
            },
        )),
    }
}

/// The writer: drains the mailbox, applying edits and publishing
/// snapshots, until close/disconnect or poisoning. Runs inside the
/// supervisor's `catch_unwind`; a panic anywhere here (injected fault,
/// panicking client closure, engine bug) drops the in-flight request —
/// its caller observes [`ServiceError::SessionPoisoned`] — and routes to
/// the quarantine path.
fn writer_loop(
    ckt: &mut Ckt,
    rx: &Receiver<Envelope>,
    shared: &Shared,
    views: &mut ViewFanout,
) -> LoopExit {
    loop {
        let env = match rx.recv() {
            Ok(r) => r,
            Err(_) => return LoopExit::Closed,
        };
        if !matches!(env.req, Request::Close) {
            shared.note_dequeued(env.enqueued_at.elapsed());
        }
        let _req_span = qtask_obs::span!(env.req.span_name());
        qtask_faults::fault_point!("service/writer");
        match env.req {
            Request::Close => return LoopExit::Closed,
            Request::Sync { reply } => {
                let _ = reply.send(shared.version());
            }
            Request::Inspect { reply } => {
                let _ = reply.send((ckt.circuit().clone(), shared.version()));
            }
            Request::Subscribe { query, reply } => {
                let _ = reply.send(views.subscribe(ckt, shared.id, query));
            }
            Request::ViewReport { reply } => {
                let _ = reply.send(views.report());
            }
            Request::Edit { op, reply } => match apply_edit(ckt, op, shared) {
                Ok(outcome) => {
                    shared.note_edit_ok();
                    // The publish inside apply_edit already patched every
                    // registered view (registry is an engine observer);
                    // deliver the fresh readings before taking the next
                    // request.
                    views.push_all();
                    let _ = reply.send(Ok(outcome));
                }
                Err(e) => {
                    shared.note_edit_failed();
                    if ckt.is_poisoned() {
                        let reason = ckt.poison_reason().unwrap_or("engine poisoned").to_string();
                        let _ = reply.send(Err(ServiceError::SessionPoisoned {
                            session: shared.id,
                            reason: reason.clone(),
                        }));
                        return LoopExit::Poisoned(reason);
                    }
                    let _ = reply.send(Err(e));
                }
            },
        }
    }
}

/// Commit one transaction, re-simulate, publish. A typed error with a
/// healthy engine leaves the circuit exactly as before (the transaction
/// staged and aborted); a poisoning error is escalated by the caller.
fn apply_edit(ckt: &mut Ckt, op: EditFn, shared: &Shared) -> Result<EditOutcome, ServiceError> {
    let (_, receipt) = ckt.edit(|tx| op(tx)).map_err(ServiceError::Engine)?;
    ckt.update_state().map_err(ServiceError::Engine)?;
    if let Some(snap) = ckt.latest_snapshot() {
        shared.publish(snap);
    }
    Ok(EditOutcome {
        receipt,
        version: ckt.snapshot_version(),
    })
}
