//! Deterministic seeded backoff with jitter.
//!
//! Retry storms are a coordination failure: if every shed client
//! re-submits after the same delay, the mailbox that was full stays
//! full. The classic fix is jitter — but *random* jitter makes retry
//! behavior unreproducible, which is poison for a deterministic chaos
//! suite. [`BackoffSchedule`] therefore derives its jitter from a seed
//! with the same splitmix64 mixer `qtask-faults` uses: two schedules
//! built from equal `(policy, seed, budget)` yield byte-identical delay
//! sequences, while different seeds (e.g. different session ids)
//! de-synchronize in the fleet.

use crate::RetryPolicy;
use std::time::Duration;

/// Iterator over the retry delays of one request: attempt *i* nominally
/// waits `min(base_delay · 2^i, max_delay)`, scaled by a seeded jitter
/// factor in `[0.5, 1.0)`. The schedule ends at
/// [`RetryPolicy::max_retries`] attempts or as soon as the *cumulative*
/// delay would exceed `budget` (the request's deadline) — a retry the
/// caller cannot wait out is never issued.
#[derive(Clone, Debug)]
pub struct BackoffSchedule {
    base: Duration,
    max: Duration,
    max_retries: u32,
    budget: Duration,
    slept: Duration,
    attempt: u32,
    state: u64,
}

impl BackoffSchedule {
    /// Builds the schedule for one request. `seed` should vary per
    /// logical actor (session id, request id) so concurrent retriers
    /// spread out; equal seeds reproduce equal schedules.
    pub fn new(policy: &RetryPolicy, seed: u64, budget: Duration) -> BackoffSchedule {
        BackoffSchedule {
            base: policy.base_delay,
            max: policy.max_delay,
            max_retries: policy.max_retries,
            budget,
            slept: Duration::ZERO,
            attempt: 0,
            state: splitmix64(seed ^ 0x71c7_f0aa_0b53_9d2e),
        }
    }

    /// Attempts already yielded.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

impl Iterator for BackoffSchedule {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_retries {
            return None;
        }
        let factor = 1u32.checked_shl(self.attempt).unwrap_or(u32::MAX);
        let nominal = self.base.saturating_mul(factor).min(self.max);
        self.state = splitmix64(self.state);
        // 53 high bits → uniform fraction in [0, 1); jitter in [0.5, 1.0).
        let frac = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        let delay = nominal.mul_f64(0.5 + 0.5 * frac);
        if self.slept + delay > self.budget {
            self.attempt = self.max_retries; // deadline-bounded: give up
            return None;
        }
        self.slept += delay;
        self.attempt += 1;
        Some(delay)
    }
}

/// The same finalizer `qtask-faults` seeds plans with (kept local: the
/// faults crate does not export it, and four lines beat a dependency
/// edge for a hash function).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 6,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
        }
    }

    #[test]
    fn schedule_is_reproducible_from_seed() {
        let budget = Duration::from_millis(200);
        let a: Vec<_> = BackoffSchedule::new(&policy(), 42, budget).collect();
        let b: Vec<_> = BackoffSchedule::new(&policy(), 42, budget).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c: Vec<_> = BackoffSchedule::new(&policy(), 43, budget).collect();
        assert_ne!(a, c, "different seeds must de-synchronize");
    }

    #[test]
    fn delays_respect_nominal_envelope_and_budget() {
        for seed in 0..64u64 {
            let budget = Duration::from_millis(25);
            let delays: Vec<_> = BackoffSchedule::new(&policy(), seed, budget).collect();
            assert!(delays.len() <= 6);
            let mut total = Duration::ZERO;
            for (i, d) in delays.iter().enumerate() {
                let nominal = Duration::from_millis(2)
                    .saturating_mul(1 << i)
                    .min(Duration::from_millis(10));
                assert!(*d <= nominal, "attempt {i}: {d:?} > {nominal:?}");
                assert!(*d >= nominal.mul_f64(0.5), "attempt {i}: {d:?} under half");
                total += *d;
            }
            assert!(total <= budget, "seed {seed}: slept {total:?} > {budget:?}");
        }
    }

    #[test]
    fn zero_budget_yields_no_retries() {
        let mut s = BackoffSchedule::new(&policy(), 1, Duration::ZERO);
        assert_eq!(s.next(), None);
        assert_eq!(s.attempts(), 6); // gave up: budget exhausted
    }
}
