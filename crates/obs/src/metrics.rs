//! The always-on metrics registry: sharded counters, gauges, log2
//! histograms, and coherent [`MetricsSnapshot`] exposition.
//!
//! Handles are interned once per `(name, label)` and leaked, so the hot
//! path — [`Counter::add`], [`Gauge::set`], [`Histogram::record`] — is a
//! handful of relaxed atomic operations with no locks and no
//! allocation. The [`counter!`](crate::counter)/[`gauge!`](crate::gauge)/
//! [`histogram!`](crate::histogram) macros cache the interned handle in a
//! per-call-site `OnceLock`, so steady-state cost is one atomic load plus
//! the update itself.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of cache-padded shards per [`Counter`]. Power of two so the
/// per-thread shard pick is a mask, sized for small worker pools (the
/// executor defaults to `available_parallelism`).
const COUNTER_SHARDS: usize = 8;

/// Number of value buckets per [`Histogram`]: bucket `0` holds zeros,
/// bucket `k` holds values with `k` significant bits (`2^(k-1)..2^k`),
/// bucket `63` is the catch-all for everything wider.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A cache-line-padded atomic, so counter shards touched by different
/// threads never share a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
    }
    SHARD.with(|s| *s) & (COUNTER_SHARDS - 1)
}

/// A monotonic counter, sharded across cache lines so concurrent
/// increments from different threads do not contend.
///
/// Obtain one from [`Registry::counter`] (or the [`counter!`](crate::counter)
/// macro); the handle is `&'static` and free to copy around.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// Adds `n`. Relaxed, lock-free, allocation-free.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value: the sum over shards. Monotonic across calls
    /// (each shard is monotonic and read with an atomic load).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// An instantaneous signed value (queue depths, in-flight request
/// counts, last-observed norm error in nanos). Not sharded: gauges
/// support absolute `set`, which cannot be distributed.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Stores an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 latency/value histogram: 64 buckets by bit
/// width, plus total count and sum. Recording is three relaxed
/// `fetch_add`s — no locks, no allocation, any `u64` value.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: `0` for zero, else its bit width
/// (clamped to the catch-all bucket 63).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `idx` (`0`, `1`, `3`, `7`, …,
/// `u64::MAX` for the catch-all).
pub fn bucket_bound(idx: usize) -> u64 {
    match idx {
        0 => 0,
        k if k >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in microseconds — the
    /// convention for every `*_us` histogram in the workspace.
    #[inline]
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn read(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Point-in-time copy of one [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket (non-cumulative) observation counts; see
    /// [`bucket_bound`] for bucket upper bounds.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (0 when empty). A coarse estimate — buckets are powers of two —
    /// but monotone and cheap, which is what bench trajectories need.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(idx);
            }
        }
        bucket_bound(HISTOGRAM_BUCKETS - 1)
    }
}

enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The process-wide metric registry: interns `(name, label)` pairs to
/// leaked `'static` handles and enumerates them for snapshots.
///
/// Interning takes a short mutex; it happens once per call site (the
/// macros cache the returned reference), so the lock is never on a hot
/// path. The leak is bounded by the number of distinct metric names —
/// a few dozen in this workspace plus one set per live session label.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Handle>>,
}

/// The global registry behind every macro and snapshot.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Renders the canonical key for a metric: `name` alone, or
/// `name{key="value"}` for labeled instances.
fn render_key(name: &str, label: Option<(&str, &str)>) -> String {
    match label {
        None => name.to_string(),
        Some((k, v)) => format!("{name}{{{k}=\"{v}\"}}"),
    }
}

impl Registry {
    fn intern<T: Default>(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        wrap: fn(&'static T) -> Handle,
        unwrap: fn(&Handle) -> Option<&'static T>,
    ) -> &'static T {
        let key = render_key(name, label);
        let mut metrics = self.metrics.lock();
        if let Some(h) = metrics.get(&key) {
            return unwrap(h).unwrap_or_else(|| {
                panic!("metric {key:?} already registered with a different type")
            });
        }
        let leaked: &'static T = Box::leak(Box::default());
        metrics.insert(key, wrap(leaked));
        leaked
    }

    /// Interns (or retrieves) the counter `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        self.counter_with(name, None)
    }

    /// Interns a labeled counter, e.g. `("service.edits_ok", Some(("session", "3")))`.
    pub fn counter_with(&self, name: &str, label: Option<(&str, &str)>) -> &'static Counter {
        self.intern(name, label, Handle::Counter, |h| match h {
            Handle::Counter(c) => Some(c),
            _ => None,
        })
    }

    /// Interns (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        self.gauge_with(name, None)
    }

    /// Interns a labeled gauge.
    pub fn gauge_with(&self, name: &str, label: Option<(&str, &str)>) -> &'static Gauge {
        self.intern(name, label, Handle::Gauge, |h| match h {
            Handle::Gauge(g) => Some(g),
            _ => None,
        })
    }

    /// Interns (or retrieves) the histogram `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        self.histogram_with(name, None)
    }

    /// Interns a labeled histogram.
    pub fn histogram_with(&self, name: &str, label: Option<(&str, &str)>) -> &'static Histogram {
        self.intern(name, label, Handle::Histogram, |h| match h {
            Handle::Histogram(h) => Some(h),
            _ => None,
        })
    }

    /// A coherent point-in-time view of every registered metric,
    /// sorted by name. Counters are monotonic between snapshots;
    /// cross-metric consistency is best-effort (in-flight updates on
    /// other threads may be split across two metrics).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock();
        let mut snap = MetricsSnapshot::default();
        for (key, handle) in metrics.iter() {
            match handle {
                Handle::Counter(c) => snap.counters.push((key.clone(), c.get())),
                Handle::Gauge(g) => snap.gauges.push((key.clone(), g.get())),
                Handle::Histogram(h) => snap.histograms.push((key.clone(), h.read())),
            }
        }
        snap
    }
}

/// Convenience: a snapshot of the global [`registry`].
pub fn snapshot() -> MetricsSnapshot {
    registry().snapshot()
}

/// A coherent, point-in-time copy of every metric in a [`Registry`],
/// with JSON and Prometheus text exposition. Entries are sorted by
/// rendered name, so output is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Splits a rendered key back into `(base name, label)` — the inverse
/// of the registry's `name{key="value"}` rendering.
fn split_key(key: &str) -> (&str, Option<(&str, &str)>) {
    let Some(brace) = key.find('{') else {
        return (key, None);
    };
    let base = &key[..brace];
    let body = key[brace + 1..].trim_end_matches('}');
    if let Some((k, v)) = body.split_once("=\"") {
        return (base, Some((k, v.trim_end_matches('"'))));
    }
    (base, None)
}

/// Maps a metric name to a Prometheus-legal identifier.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("qtask_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl MetricsSnapshot {
    /// Value of counter `name` (rendered key, including any label).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// Sum of counter `name` over all labeled instances (plus the
    /// unlabeled one, if present).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| split_key(k).0 == name)
            .map(|&(_, v)| v)
            .sum()
    }

    /// JSON exposition: one object with `counters`/`gauges`/`histograms`
    /// maps. Histograms list only their non-empty buckets as
    /// `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_escape(k),
                h.count,
                h.sum
            ));
            let mut first = true;
            for (idx, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("[{}, {}]", bucket_bound(idx), c));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Prometheus text exposition (`# TYPE` lines, `_bucket`/`_sum`/
    /// `_count` series with cumulative `le` buckets for histograms).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let label_str = |label: Option<(&str, &str)>, extra: Option<(&str, String)>| {
            let mut parts = Vec::new();
            if let Some((k, v)) = label {
                parts.push(format!("{k}=\"{v}\""));
            }
            if let Some((k, v)) = extra {
                parts.push(format!("{k}=\"{v}\""));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        };
        let mut typed = std::collections::BTreeSet::new();
        for (key, v) in &self.counters {
            let (base, label) = split_key(key);
            let name = prometheus_name(base);
            if typed.insert(name.clone()) {
                out.push_str(&format!("# TYPE {name} counter\n"));
            }
            out.push_str(&format!("{name}{} {v}\n", label_str(label, None)));
        }
        for (key, v) in &self.gauges {
            let (base, label) = split_key(key);
            let name = prometheus_name(base);
            if typed.insert(name.clone()) {
                out.push_str(&format!("# TYPE {name} gauge\n"));
            }
            out.push_str(&format!("{name}{} {v}\n", label_str(label, None)));
        }
        for (key, h) in &self.histograms {
            let (base, label) = split_key(key);
            let name = prometheus_name(base);
            if typed.insert(name.clone()) {
                out.push_str(&format!("# TYPE {name} histogram\n"));
            }
            let mut cumulative = 0u64;
            for (idx, &c) in h.buckets.iter().enumerate() {
                if c == 0 || idx == HISTOGRAM_BUCKETS - 1 {
                    cumulative += c;
                    continue;
                }
                cumulative += c;
                out.push_str(&format!(
                    "{name}_bucket{} {cumulative}\n",
                    label_str(label, Some(("le", bucket_bound(idx).to_string())))
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                label_str(label, Some(("le", "+Inf".to_string())))
            ));
            out.push_str(&format!("{name}_sum{} {}\n", label_str(label, None), h.sum));
            out.push_str(&format!(
                "{name}_count{} {}\n",
                label_str(label, None),
                h.count
            ));
        }
        out
    }
}
