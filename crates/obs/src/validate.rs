//! Minimal JSON parsing and Chrome-trace validation.
//!
//! The build environment has no crate registry (no `serde_json`), so
//! tests that assert "the export is valid JSON with properly nested
//! begin/end pairs" need an in-tree checker. This is a small recursive
//! descent parser over the full JSON grammar plus a trace-specific
//! structural check — not a general-purpose JSON library.

use std::collections::{BTreeMap, BTreeSet};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (keys sorted).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if any.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char, self.pos, self.bytes[self.pos] as char
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                c => return Err(format!("expected ',' or '}}', found {:?}", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                c => return Err(format!("expected ',' or ']', found {:?}", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("invalid escape \\{}", c as char)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 from the raw input.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or("truncated UTF-8".to_string())?;
                    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Structural summary of a validated Chrome trace.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    /// Total events.
    pub events: usize,
    /// Matched begin/end pairs.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Spans still open at the end of the trace, per thread — nonzero
    /// is legal (the trace was drained mid-span) but tests on quiesced
    /// runs should expect zero.
    pub open_spans: usize,
    /// Distinct event names seen.
    pub names: BTreeSet<String>,
}

/// Parses `text` as Chrome trace JSON (either a bare event array or an
/// object with a `traceEvents` member) and checks per-thread nesting:
/// every `E` must close the innermost open `B` of the same name, and
/// timestamps must be non-decreasing within a thread.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = parse_json(text)?;
    let events = match &doc {
        Json::Array(v) => v.as_slice(),
        obj => obj
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or("no traceEvents array")?,
    };
    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing ts"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing tid"))? as u64;
        let prev = last_ts.entry(tid).or_insert(ts);
        if ts < *prev {
            return Err(format!("event {i}: ts went backwards on tid {tid}"));
        }
        *prev = ts;
        stats.names.insert(name.to_string());
        match ph {
            "B" => stacks.entry(tid).or_default().push(name.to_string()),
            "E" => {
                let top = stacks.entry(tid).or_default().pop().ok_or(format!(
                    "event {i}: E {name:?} on tid {tid} with no open span"
                ))?;
                if top != name {
                    return Err(format!(
                        "event {i}: E {name:?} on tid {tid} closes open span {top:?}"
                    ));
                }
                stats.spans += 1;
            }
            "i" => stats.instants += 1,
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    stats.open_spans = stacks.values().map(Vec::len).sum();
    Ok(stats)
}
