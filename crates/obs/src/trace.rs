//! Feature-gated tracing: per-thread ring buffers of span/instant
//! events, drained by [`TraceSink`] into Chrome `chrome://tracing` JSON.
//!
//! The recording entry points ([`SpanGuard::enter`], [`instant`]) are
//! always compiled — it is the [`span!`](crate::span)/[`event!`](crate::event)
//! macros that vanish without the consumer's `obs` feature, exactly like
//! `qtask_faults::fault_point!`. Each thread owns a fixed-capacity ring
//! (old events are overwritten, never reallocated), registered globally
//! on first use and kept after thread exit so a failed writer's last
//! events survive for its autopsy.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity, in events (~32 B each).
pub const DEFAULT_RING_CAPACITY: usize = 8192;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(true);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Globally enables/disables recording (it starts enabled). Spans
/// entered while disabled stay inert for their whole lifetime, so
/// toggling cannot produce unmatched begin/end pairs.
pub fn set_trace_enabled(enabled: bool) {
    TRACE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Sets the capacity (in events) of rings created *after* this call;
/// existing threads keep their rings. Clamped to at least 16.
pub fn set_ring_capacity(events: usize) {
    RING_CAPACITY.store(events.max(16), Ordering::Relaxed);
}

/// A span/event name: either a static string (phase and site names) or
/// a shared one (executor task names are `Arc<str>`). Cloning never
/// allocates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Name {
    /// A `&'static str` name — the common case for code sites.
    Static(&'static str),
    /// A reference-counted name, e.g. a task's `Arc<str>` label.
    Shared(Arc<str>),
}

impl Name {
    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        match self {
            Name::Static(s) => s,
            Name::Shared(s) => s,
        }
    }
}

impl From<&'static str> for Name {
    fn from(s: &'static str) -> Name {
        Name::Static(s)
    }
}

impl From<Arc<str>> for Name {
    fn from(s: Arc<str>) -> Name {
        Name::Shared(s)
    }
}

/// Event kind, mapping onto Chrome trace phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span open (`ph: "B"`).
    Begin,
    /// Span close (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span or event name.
    pub name: Name,
    /// Begin/End/Instant.
    pub phase: Phase,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Per-thread monotonic sequence number (orders same-timestamp
    /// events within a thread).
    pub seq: u64,
    /// Small dense id of the recording thread.
    pub tid: u64,
}

impl TraceEvent {
    /// Compact single-line rendering, used for autopsy attachments:
    /// `"+12.345ms B update/kernel [tid 3]"`.
    pub fn render(&self) -> String {
        let ph = match self.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        };
        format!(
            "+{:.3}ms {} {} [tid {}]",
            self.ts_ns as f64 / 1e6,
            ph,
            self.name.as_str(),
            self.tid
        )
    }
}

struct RingInner {
    buf: Vec<TraceEvent>,
    /// Next write position (== buf.len() until the ring first wraps).
    next: usize,
    wrapped: bool,
    seq: u64,
    capacity: usize,
}

/// One thread's event ring. Registered globally on first use; outlives
/// its thread so post-mortem reads see the final events.
pub struct ThreadRing {
    tid: u64,
    inner: Mutex<RingInner>,
}

impl ThreadRing {
    fn new() -> ThreadRing {
        let capacity = RING_CAPACITY.load(Ordering::Relaxed);
        ThreadRing {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            inner: Mutex::new(RingInner {
                buf: Vec::with_capacity(capacity),
                next: 0,
                wrapped: false,
                seq: 0,
                capacity,
            }),
        }
    }

    fn push(&self, name: Name, phase: Phase) {
        let ts_ns = now_ns();
        let mut inner = self.inner.lock();
        let seq = inner.seq;
        inner.seq += 1;
        let ev = TraceEvent {
            name,
            phase,
            ts_ns,
            seq,
            tid: self.tid,
        };
        if inner.buf.len() < inner.capacity {
            inner.buf.push(ev);
            inner.next = inner.buf.len() % inner.capacity;
        } else {
            let at = inner.next;
            inner.buf[at] = ev;
            inner.next = (at + 1) % inner.capacity;
            inner.wrapped = true;
        }
    }

    /// Events in recording order, oldest first.
    fn snapshot(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock();
        if inner.wrapped {
            let mut out = Vec::with_capacity(inner.buf.len());
            out.extend_from_slice(&inner.buf[inner.next..]);
            out.extend_from_slice(&inner.buf[..inner.next]);
            out
        } else {
            inner.buf.clone()
        }
    }

    fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.buf.clear();
        inner.next = 0;
        inner.wrapped = false;
    }
}

fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn with_thread_ring<R>(f: impl FnOnce(&ThreadRing) -> R) -> R {
    thread_local! {
        static RING: Arc<ThreadRing> = {
            let ring = Arc::new(ThreadRing::new());
            rings().lock().push(Arc::clone(&ring));
            ring
        };
    }
    RING.with(|r| f(r))
}

/// Records an instant event on the current thread (no-op when tracing
/// is disabled). Called by the [`event!`](crate::event) macro.
#[inline]
pub fn instant(name: impl Into<Name>) {
    if trace_enabled() {
        with_thread_ring(|r| r.push(name.into(), Phase::Instant));
    }
}

/// The last `n` events recorded by the *current* thread, oldest first.
/// This is the autopsy hook: a session supervisor reads its own ring
/// right after its writer loop dies.
pub fn recent_thread_events(n: usize) -> Vec<TraceEvent> {
    let mut events = with_thread_ring(|r| r.snapshot());
    if events.len() > n {
        events.drain(..events.len() - n);
    }
    events
}

/// RAII span: records `Begin` on construction and `End` on drop.
/// Construct through the [`span!`](crate::span) macro so disabled
/// builds compile the whole thing away.
#[must_use = "a span guard records its End event when dropped"]
pub struct SpanGuard {
    /// `None` when tracing was disabled at entry — the drop is inert.
    name: Option<Name>,
}

impl SpanGuard {
    /// Opens a span named `name`.
    #[inline]
    pub fn enter(name: impl Into<Name>) -> SpanGuard {
        if !trace_enabled() {
            return SpanGuard { name: None };
        }
        let name = name.into();
        with_thread_ring(|r| r.push(name.clone(), Phase::Begin));
        SpanGuard { name: Some(name) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            with_thread_ring(|r| r.push(name, Phase::End));
        }
    }
}

/// The zero-cost stand-in the [`span!`](crate::span) macro yields when
/// the consuming crate's `obs` feature is off. The empty `Drop` keeps
/// call sites uniform (`drop(guard)` is legal either way) and compiles
/// to nothing.
pub struct NoopSpan;

impl NoopSpan {
    /// A disabled span.
    #[inline]
    pub fn new() -> NoopSpan {
        NoopSpan
    }
}

impl Default for NoopSpan {
    fn default() -> NoopSpan {
        NoopSpan::new()
    }
}

impl Drop for NoopSpan {
    fn drop(&mut self) {}
}

/// A drained set of trace events, exportable as Chrome trace JSON.
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
}

impl TraceSink {
    /// Collects every thread's events and clears the rings (the usual
    /// end-of-run export path).
    pub fn drain() -> TraceSink {
        let rings = rings().lock();
        let mut events = Vec::new();
        for ring in rings.iter() {
            events.extend(ring.snapshot());
            ring.clear();
        }
        TraceSink::from_events(events)
    }

    /// Collects every thread's events without clearing.
    pub fn capture() -> TraceSink {
        let rings = rings().lock();
        let mut events = Vec::new();
        for ring in rings.iter() {
            events.extend(ring.snapshot());
        }
        TraceSink::from_events(events)
    }

    fn from_events(mut events: Vec<TraceEvent>) -> TraceSink {
        events.sort_by_key(|e| (e.ts_ns, e.tid, e.seq));
        TraceSink { events }
    }

    /// Clears every thread's ring without collecting (e.g. to discard
    /// warmup noise before the measured region).
    pub fn clear_all() {
        let rings = rings().lock();
        for ring in rings.iter() {
            ring.clear();
        }
    }

    /// The drained events, ordered by timestamp.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of drained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded (e.g. the `obs` feature is off).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the events as Chrome trace JSON — load the output in
    /// `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
    /// microseconds since the process trace epoch.
    pub fn export_chrome(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let ph = match ev.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"qtask\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}{}}}",
                chrome_escape(ev.name.as_str()),
                ph,
                ev.ts_ns as f64 / 1e3,
                ev.tid,
                if ev.phase == Phase::Instant { ",\"s\":\"t\"" } else { "" },
            ));
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

fn chrome_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
