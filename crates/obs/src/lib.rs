//! Observability for the qTask workspace: a unified metrics registry
//! and zero-overhead tracing spans with Chrome-trace export.
//!
//! Two halves, with different cost contracts:
//!
//! - **Metrics** (always compiled): sharded monotonic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log2 [`Histogram`]s, interned by name
//!   in a global [`Registry`] and read at any time as a coherent
//!   [`MetricsSnapshot`] with JSON ([`MetricsSnapshot::to_json`]) and
//!   Prometheus text ([`MetricsSnapshot::to_prometheus`]) exposition.
//!   The hot path is a few relaxed atomics — no locks, no allocation —
//!   and every update site sits on coarse boundaries (per update, per
//!   task, per request), never per amplitude.
//! - **Tracing** (feature-gated): the [`span!`]/[`event!`] macros
//!   expand to `#[cfg(feature = "obs")]`-gated code in the *consuming*
//!   crate, exactly like `qtask_faults::fault_point!` — without
//!   `--features obs` they compile to nothing (a [`NoopSpan`] unit).
//!   With the feature, spans record begin/end events into per-thread
//!   ring buffers ([`ThreadRing`]) drained by [`TraceSink`] into
//!   Chrome `chrome://tracing` JSON ([`TraceSink::export_chrome`]).
//!
//! # Metrics
//!
//! ```
//! use qtask_obs::{counter, histogram, snapshot};
//!
//! counter!("doc.widgets").add(3);
//! histogram!("doc.latency_us").record(180);
//! let snap = snapshot();
//! assert_eq!(snap.counter("doc.widgets"), Some(3));
//! assert!(snap.to_prometheus().contains("qtask_doc_widgets 3"));
//! ```
//!
//! # Spans
//!
//! ```
//! // In a crate with an `obs` feature this is the `span!` macro; the
//! // runtime API records unconditionally and is what the macro calls.
//! let sink = {
//!     let _outer = qtask_obs::SpanGuard::enter("doc/outer");
//!     let _inner = qtask_obs::SpanGuard::enter("doc/inner");
//!     drop(_inner);
//!     drop(_outer);
//!     qtask_obs::TraceSink::capture()
//! };
//! let stats = qtask_obs::validate_chrome_trace(&sink.export_chrome()).unwrap();
//! assert!(stats.spans >= 2);
//! ```
//!
//! The per-thread rings survive thread exit, so a supervisor can read
//! a failed writer's final events ([`recent_thread_events`]) into its
//! autopsy report.

#![warn(missing_docs)]

mod metrics;
mod trace;
mod validate;

pub use metrics::{
    bucket_bound, bucket_index, registry, snapshot, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
pub use trace::{
    instant, recent_thread_events, set_ring_capacity, set_trace_enabled, trace_enabled, Name,
    NoopSpan, Phase, SpanGuard, ThreadRing, TraceEvent, TraceSink, DEFAULT_RING_CAPACITY,
};
pub use validate::{parse_json, validate_chrome_trace, Json, TraceStats};

/// Opens a tracing span for the enclosing scope; bind the result
/// (`let _span = span!("update/kernel");`) so it drops at scope exit.
///
/// Accepts anything convertible to [`Name`] — `&'static str` or an
/// `Arc<str>` task label. Compiles to a [`NoopSpan`] unit unless the
/// *consuming* crate is built with its `obs` feature, so default
/// builds carry zero cost (same discipline as `fault_point!`).
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        #[cfg(feature = "obs")]
        let __qtask_obs_span = $crate::SpanGuard::enter($name);
        #[cfg(not(feature = "obs"))]
        let __qtask_obs_span = $crate::NoopSpan::new();
        __qtask_obs_span
    }};
}

/// Records an instant (point-in-time) trace event. Compiles to nothing
/// unless the consuming crate is built with its `obs` feature.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        #[cfg(feature = "obs")]
        $crate::instant($name);
    };
}

/// Interns the counter `$name` once per call site and returns the
/// `&'static Counter`; steady-state cost is one atomic load plus the
/// increment. Always compiled — metrics are not feature-gated.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __QTASK_OBS_HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__QTASK_OBS_HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Interns the gauge `$name` once per call site (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __QTASK_OBS_HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__QTASK_OBS_HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Interns the histogram `$name` once per call site (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __QTASK_OBS_HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__QTASK_OBS_HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every value is <= its bucket's bound and > the previous one's.
        for v in [1u64, 2, 3, 4, 7, 8, 1000, 1 << 40] {
            let idx = bucket_index(v);
            assert!(v <= bucket_bound(idx));
            assert!(idx == 0 || v > bucket_bound(idx - 1));
        }
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = registry().counter("obs.test.counter_roundtrip");
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
        // Re-interning the same name yields the same handle.
        let again = registry().counter("obs.test.counter_roundtrip");
        assert_eq!(again.get(), 6);
        let g = registry().gauge("obs.test.gauge_roundtrip");
        g.add(10);
        g.dec();
        assert_eq!(g.get(), 9);
        g.set(-4);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = registry().histogram("obs.test.hist");
        for v in [0u64, 1, 1, 2, 100, 100, 100, 5000] {
            h.record(v);
        }
        let snap = snapshot();
        let hs = snap.histogram("obs.test.hist").unwrap();
        assert_eq!(hs.count, 8);
        assert_eq!(hs.sum, 5304);
        assert!((hs.mean() - 663.0).abs() < 1e-9);
        assert_eq!(hs.quantile(0.0), 0);
        // Median observation is 2 → bucket bound 3.
        assert_eq!(hs.quantile(0.5), 3);
        assert!(hs.quantile(1.0) >= 5000);
    }

    #[test]
    fn labeled_metrics_render_and_total() {
        let a = registry().counter_with("obs.test.labeled", Some(("session", "1")));
        let b = registry().counter_with("obs.test.labeled", Some(("session", "2")));
        a.add(2);
        b.add(3);
        let snap = snapshot();
        assert_eq!(snap.counter("obs.test.labeled{session=\"1\"}"), Some(2));
        assert_eq!(snap.counter_total("obs.test.labeled"), 5);
        let prom = snap.to_prometheus();
        assert!(prom.contains("qtask_obs_test_labeled{session=\"1\"} 2"));
        assert!(prom.contains("qtask_obs_test_labeled{session=\"2\"} 3"));
    }

    #[test]
    fn snapshot_json_is_valid_json() {
        registry().counter("obs.test.json").add(7);
        registry().histogram("obs.test.json_hist").record(42);
        let snap = snapshot();
        let doc = parse_json(&snap.to_json()).expect("snapshot JSON parses");
        let counters = doc.get("counters").expect("counters object");
        assert_eq!(
            counters.get("obs.test.json").and_then(Json::as_f64),
            Some(7.0)
        );
        assert!(doc.get("histograms").is_some());
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let h = registry().histogram("obs.test.prom_hist");
        h.record(1);
        h.record(1);
        h.record(100);
        let prom = snapshot().to_prometheus();
        assert!(prom.contains("# TYPE qtask_obs_test_prom_hist histogram"));
        assert!(prom.contains("qtask_obs_test_prom_hist_bucket{le=\"1\"} 2"));
        assert!(prom.contains("qtask_obs_test_prom_hist_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("qtask_obs_test_prom_hist_sum 102"));
        assert!(prom.contains("qtask_obs_test_prom_hist_count 3"));
    }

    // All span/ring behavior lives in one test: the rings are global
    // per-thread state, and a concurrent drain from a second test
    // would race with open spans.
    #[test]
    fn spans_rings_and_chrome_export() {
        {
            let _outer = SpanGuard::enter("obs.test/outer");
            instant("obs.test/mark");
            {
                let _inner = SpanGuard::enter(Arc::<str>::from("obs.test/inner"));
            }
        }
        let recent = recent_thread_events(8);
        assert!(recent.len() >= 5);
        assert!(recent.iter().any(|e| e.name.as_str() == "obs.test/inner"));
        assert!(recent[0].render().contains("[tid"));

        let sink = TraceSink::capture();
        let json = sink.export_chrome();
        let stats = validate_chrome_trace(&json).expect("export validates");
        assert!(stats.spans >= 2, "expected matched pairs, got {stats:?}");
        assert_eq!(stats.open_spans, 0);
        assert!(stats.instants >= 1);
        assert!(stats.names.contains("obs.test/outer"));
        assert!(stats.names.contains("obs.test/inner"));

        // Disabled tracing records nothing, and a guard entered while
        // disabled stays inert even if re-enabled before drop.
        set_trace_enabled(false);
        let before = TraceSink::capture().len();
        let g = SpanGuard::enter("obs.test/disabled");
        set_trace_enabled(true);
        drop(g);
        assert_eq!(TraceSink::capture().len(), before);

        // Ring overwrite: a tiny ring on a fresh thread keeps only the
        // newest events and snapshots them oldest-first.
        set_ring_capacity(16);
        let events = std::thread::spawn(|| {
            for i in 0..40 {
                // Alternate B/E so nesting stays balanced in the tail.
                let _s = SpanGuard::enter(if i % 2 == 0 {
                    "obs.test/a"
                } else {
                    "obs.test/b"
                });
            }
            recent_thread_events(usize::MAX)
        })
        .join()
        .unwrap();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        assert_eq!(events.len(), 16);
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "oldest-first order");
        }
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{\"a\": 1,}").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("\"\\q\"").is_err());
        let ok = parse_json(" {\"a\": [1, -2.5e3, \"x\\n\", true, null]} ").unwrap();
        assert_eq!(
            ok.get("a").and_then(Json::as_array).map(|a| a.len()),
            Some(5)
        );
    }

    #[test]
    fn chrome_validator_catches_bad_nesting() {
        let bad = r#"[
            {"name":"a","ph":"B","ts":1,"tid":1},
            {"name":"b","ph":"E","ts":2,"tid":1}
        ]"#;
        assert!(validate_chrome_trace(bad).is_err());
        let unopened = r#"[{"name":"a","ph":"E","ts":1,"tid":1}]"#;
        assert!(validate_chrome_trace(unopened).is_err());
        let good = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"tid":1},
            {"name":"b","ph":"B","ts":2,"tid":1},
            {"name":"b","ph":"E","ts":3,"tid":1},
            {"name":"a","ph":"E","ts":4,"tid":1}
        ]}"#;
        let stats = validate_chrome_trace(good).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.open_spans, 0);
    }
}
