//! An ordered arena: a doubly-linked list threaded through [`Arena`] slots.
//!
//! qTask maintains two totally ordered sequences that are modified in the
//! middle all the time: the list of nets, and the global list of gate rows.
//! Dependency scans walk these orders backward and forward from an
//! arbitrary element. `LinkedArena` gives stable keys, O(1)
//! insert-before/after/front/back, O(1) remove, and O(1) neighbour lookup.

use crate::arena::{Arena, Key};

#[derive(Clone)]
struct Node<T> {
    value: T,
    prev: Option<Key>,
    next: Option<Key>,
}

/// A doubly-linked list with stable generational keys.
#[derive(Clone)]
pub struct LinkedArena<T> {
    nodes: Arena<Node<T>>,
    head: Option<Key>,
    tail: Option<Key>,
}

impl<T> Default for LinkedArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LinkedArena<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        LinkedArena {
            nodes: Arena::new(),
            head: None,
            tail: None,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the list has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// First element's key, if any.
    #[inline]
    pub fn head(&self) -> Option<Key> {
        self.head
    }

    /// Last element's key, if any.
    #[inline]
    pub fn tail(&self) -> Option<Key> {
        self.tail
    }

    /// Key of the element after `key`, if any.
    #[inline]
    pub fn next(&self, key: Key) -> Option<Key> {
        self.nodes.get(key).and_then(|n| n.next)
    }

    /// Key of the element before `key`, if any.
    #[inline]
    pub fn prev(&self, key: Key) -> Option<Key> {
        self.nodes.get(key).and_then(|n| n.prev)
    }

    /// Returns the element behind `key`, if live.
    #[inline]
    pub fn get(&self, key: Key) -> Option<&T> {
        self.nodes.get(key).map(|n| &n.value)
    }

    /// Returns the element behind `key` mutably, if live.
    #[inline]
    pub fn get_mut(&mut self, key: Key) -> Option<&mut T> {
        self.nodes.get_mut(key).map(|n| &mut n.value)
    }

    /// True if `key` is live in this list.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.nodes.contains(key)
    }

    /// Inserts at the front, returning the new key.
    pub fn push_front(&mut self, value: T) -> Key {
        let key = self.nodes.insert(Node {
            value,
            prev: None,
            next: self.head,
        });
        match self.head {
            Some(old) => self.nodes[old].prev = Some(key),
            None => self.tail = Some(key),
        }
        self.head = Some(key);
        key
    }

    /// Inserts at the back, returning the new key.
    pub fn push_back(&mut self, value: T) -> Key {
        let key = self.nodes.insert(Node {
            value,
            prev: self.tail,
            next: None,
        });
        match self.tail {
            Some(old) => self.nodes[old].next = Some(key),
            None => self.head = Some(key),
        }
        self.tail = Some(key);
        key
    }

    /// Inserts `value` immediately after `after`.
    ///
    /// # Panics
    /// Panics if `after` is stale.
    pub fn insert_after(&mut self, after: Key, value: T) -> Key {
        assert!(self.nodes.contains(after), "insert_after on stale key");
        let next = self.nodes[after].next;
        let key = self.nodes.insert(Node {
            value,
            prev: Some(after),
            next,
        });
        self.nodes[after].next = Some(key);
        match next {
            Some(n) => self.nodes[n].prev = Some(key),
            None => self.tail = Some(key),
        }
        key
    }

    /// Inserts `value` immediately before `before`.
    ///
    /// # Panics
    /// Panics if `before` is stale.
    pub fn insert_before(&mut self, before: Key, value: T) -> Key {
        assert!(self.nodes.contains(before), "insert_before on stale key");
        let prev = self.nodes[before].prev;
        match prev {
            Some(p) => self.insert_after(p, value),
            None => self.push_front(value),
        }
    }

    /// Removes the element behind `key`, returning it if the key was live.
    pub fn remove(&mut self, key: Key) -> Option<T> {
        let node = self.nodes.remove(key)?;
        match node.prev {
            Some(p) => self.nodes[p].next = node.next,
            None => self.head = node.next,
        }
        match node.next {
            Some(n) => self.nodes[n].prev = node.prev,
            None => self.tail = node.prev,
        }
        Some(node.value)
    }

    /// Iterates keys front-to-back.
    pub fn keys(&self) -> KeyIter<'_, T> {
        KeyIter {
            list: self,
            cur: self.head,
        }
    }

    /// Iterates keys back-to-front.
    pub fn keys_rev(&self) -> impl Iterator<Item = Key> + '_ {
        std::iter::successors(self.tail, move |&k| self.prev(k))
    }

    /// Iterates `(key, &value)` front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &T)> {
        self.keys().map(move |k| (k, &self.nodes[k].value))
    }

    /// Position of `key` counted from the front (O(n); for tests/diagnostics).
    pub fn position(&self, key: Key) -> Option<usize> {
        self.keys().position(|k| k == key)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.head = None;
        self.tail = None;
    }
}

impl<T> std::ops::Index<Key> for LinkedArena<T> {
    type Output = T;
    #[inline]
    fn index(&self, key: Key) -> &T {
        self.get(key).expect("stale linked-arena key")
    }
}

impl<T> std::ops::IndexMut<Key> for LinkedArena<T> {
    #[inline]
    fn index_mut(&mut self, key: Key) -> &mut T {
        self.get_mut(key).expect("stale linked-arena key")
    }
}

/// Front-to-back key iterator for [`LinkedArena`].
pub struct KeyIter<'a, T> {
    list: &'a LinkedArena<T>,
    cur: Option<Key>,
}

impl<T> Iterator for KeyIter<'_, T> {
    type Item = Key;
    fn next(&mut self) -> Option<Key> {
        let k = self.cur?;
        self.cur = self.list.next(k);
        Some(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(l: &LinkedArena<i32>) -> Vec<i32> {
        l.iter().map(|(_, v)| *v).collect()
    }

    #[test]
    fn push_front_back() {
        let mut l = LinkedArena::new();
        l.push_back(2);
        l.push_front(1);
        l.push_back(3);
        assert_eq!(to_vec(&l), vec![1, 2, 3]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn insert_after_before() {
        let mut l = LinkedArena::new();
        let a = l.push_back(1);
        let c = l.push_back(3);
        let b = l.insert_after(a, 2);
        l.insert_before(a, 0);
        l.insert_after(c, 4);
        assert_eq!(to_vec(&l), vec![0, 1, 2, 3, 4]);
        assert_eq!(l.prev(b), Some(a));
        assert_eq!(l.next(b), Some(c));
    }

    #[test]
    fn remove_relinks() {
        let mut l = LinkedArena::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        let c = l.push_back(3);
        assert_eq!(l.remove(b), Some(2));
        assert_eq!(l.next(a), Some(c));
        assert_eq!(l.prev(c), Some(a));
        assert_eq!(to_vec(&l), vec![1, 3]);
        assert_eq!(l.remove(b), None);
        l.remove(a);
        l.remove(c);
        assert!(l.is_empty());
        assert_eq!(l.head(), None);
        assert_eq!(l.tail(), None);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = LinkedArena::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        let c = l.push_back(3);
        l.remove(a);
        assert_eq!(l.head(), Some(b));
        l.remove(c);
        assert_eq!(l.tail(), Some(b));
        assert_eq!(to_vec(&l), vec![2]);
    }

    #[test]
    fn reverse_iteration() {
        let mut l = LinkedArena::new();
        for i in 0..5 {
            l.push_back(i);
        }
        let rev: Vec<i32> = l.keys_rev().map(|k| l[k]).collect();
        assert_eq!(rev, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn position_reports_order() {
        let mut l = LinkedArena::new();
        let a = l.push_back(10);
        let b = l.push_front(20);
        assert_eq!(l.position(b), Some(0));
        assert_eq!(l.position(a), Some(1));
    }

    #[test]
    fn model_check_against_vec() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let mut l = LinkedArena::new();
        let mut model: Vec<(Key, u32)> = Vec::new();
        for step in 0..5_000u32 {
            match rng.random_range(0..5) {
                0 => {
                    let k = l.push_front(step);
                    model.insert(0, (k, step));
                }
                1 => {
                    let k = l.push_back(step);
                    model.push((k, step));
                }
                2 if !model.is_empty() => {
                    let i = rng.random_range(0..model.len());
                    let k = l.insert_after(model[i].0, step);
                    model.insert(i + 1, (k, step));
                }
                3 if !model.is_empty() => {
                    let i = rng.random_range(0..model.len());
                    let k = l.insert_before(model[i].0, step);
                    model.insert(i, (k, step));
                }
                4 if !model.is_empty() => {
                    let i = rng.random_range(0..model.len());
                    let (k, v) = model.remove(i);
                    assert_eq!(l.remove(k), Some(v));
                }
                _ => {}
            }
            assert_eq!(l.len(), model.len());
        }
        let got: Vec<u32> = l.iter().map(|(_, v)| *v).collect();
        let want: Vec<u32> = model.iter().map(|(_, v)| *v).collect();
        assert_eq!(got, want);
        let got_rev: Vec<u32> = l.keys_rev().map(|k| l[k]).collect();
        let mut want_rev = want.clone();
        want_rev.reverse();
        assert_eq!(got_rev, want_rev);
    }
}
