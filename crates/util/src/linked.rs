//! An ordered arena: a doubly-linked list threaded through [`Arena`] slots.
//!
//! qTask maintains two totally ordered sequences that are modified in the
//! middle all the time: the list of nets, and the global list of gate rows.
//! Dependency scans walk these orders backward and forward from an
//! arbitrary element. `LinkedArena` gives stable keys, O(1)
//! insert-before/after/front/back, O(1) remove, and O(1) neighbour lookup.
//!
//! # Order labels
//!
//! Every element additionally carries an **order label**: a `u64` such
//! that `label(a) < label(b)` iff `a` precedes `b` in the list (the
//! classic order-maintenance problem). Labels let two arbitrary keys be
//! order-compared in O(1) without walking the list, which is what makes
//! the engine's owner-index block resolution a binary search instead of a
//! row walk. Labels are assigned with power-of-two gaps and the midpoint
//! rule on insertion; when a gap is exhausted the whole list is relabeled
//! evenly (amortized O(1) per insertion for the gap sizes used here, and
//! vanishingly rare at qTask's row counts). **A relabel changes labels
//! but never relative order**, so any structure sorted by label stays
//! sorted — holders must simply re-read labels through
//! [`LinkedArena::order_label`] rather than caching them across
//! mutations.

use crate::arena::{Arena, Key};

/// Initial spacing between adjacent labels; each mid-insertion halves the
/// local gap, so ~32 consecutive same-spot insertions trigger one relabel.
const LABEL_GAP: u64 = 1 << 32;

#[derive(Clone)]
struct Node<T> {
    value: T,
    prev: Option<Key>,
    next: Option<Key>,
    label: u64,
}

/// A doubly-linked list with stable generational keys and O(1)
/// order-comparison labels.
#[derive(Clone)]
pub struct LinkedArena<T> {
    nodes: Arena<Node<T>>,
    head: Option<Key>,
    tail: Option<Key>,
    /// Number of whole-list relabel passes performed (diagnostics).
    relabels: u64,
}

impl<T> Default for LinkedArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LinkedArena<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        LinkedArena {
            nodes: Arena::new(),
            head: None,
            tail: None,
            relabels: 0,
        }
    }

    /// The element's order label: `order_label(a) < order_label(b)` iff
    /// `a` precedes `b`. Valid until the next list mutation (a relabel
    /// may change values, never relative order).
    #[inline]
    pub fn order_label(&self, key: Key) -> Option<u64> {
        self.nodes.get(key).map(|n| n.label)
    }

    /// True if `a` precedes `b` in the list. O(1).
    ///
    /// # Panics
    /// Panics if either key is stale.
    #[inline]
    pub fn is_before(&self, a: Key, b: Key) -> bool {
        self.order_label(a).expect("stale key in is_before")
            < self.order_label(b).expect("stale key in is_before")
    }

    /// Number of whole-list relabel passes so far (diagnostics/tests).
    #[inline]
    pub fn relabel_count(&self) -> u64 {
        self.relabels
    }

    /// Label for an element inserted between labels `lo` (exclusive,
    /// `None` = front) and `hi` (exclusive, `None` = back), relabeling
    /// the whole list first if the gap is exhausted. Called *before* the
    /// new node is linked in.
    fn make_label_between(&mut self, lo: Option<Key>, hi: Option<Key>) -> u64 {
        if let Some(label) = self.try_label_between(lo, hi) {
            return label;
        }
        self.relabel_evenly();
        self.try_label_between(lo, hi)
            .expect("fresh relabel always leaves room")
    }

    fn try_label_between(&self, lo: Option<Key>, hi: Option<Key>) -> Option<u64> {
        let lo_label = lo.map(|k| self.nodes[k].label);
        let hi_label = hi.map(|k| self.nodes[k].label);
        match (lo_label, hi_label) {
            (None, None) => Some(u64::MAX / 2),
            (Some(a), None) => a.checked_add(LABEL_GAP).or_else(|| {
                let room = u64::MAX - a;
                (room >= 2).then(|| a + room / 2)
            }),
            (None, Some(b)) => b.checked_sub(LABEL_GAP).or((b >= 2).then_some(b / 2)),
            (Some(a), Some(b)) => {
                debug_assert!(a < b, "labels out of order");
                (b - a >= 2).then(|| a + (b - a) / 2)
            }
        }
    }

    /// Respaces all labels evenly across the u64 range, preserving order.
    fn relabel_evenly(&mut self) {
        self.relabels += 1;
        let n = self.nodes.len() as u64;
        debug_assert!(n > 0, "relabel of an empty list");
        // Stride leaves LABEL_GAP headroom at both ends when possible.
        let stride = ((u64::MAX - 2 * LABEL_GAP.min(u64::MAX / 4)) / (n + 1)).max(1);
        let mut label = stride;
        let mut cur = self.head;
        while let Some(k) = cur {
            self.nodes[k].label = label;
            label = label.saturating_add(stride);
            cur = self.nodes[k].next;
        }
    }

    /// Creates an [`crate::IdPredictor`] over this list's node arena.
    /// Keys handed out by `push_front`/`push_back`/`insert_after`/
    /// `insert_before` come from that arena in *call* order — where the
    /// element lands in the list does not affect its key — so a staged
    /// overlay can predict them through
    /// [`LinkedArena::predict_insert`]/[`LinkedArena::predict_remove`]
    /// without cloning the list. Valid until the list is next mutated.
    pub fn predictor(&self) -> crate::IdPredictor {
        self.nodes.predictor()
    }

    /// Predicts the key the next insertion (any position) would return.
    #[inline]
    pub fn predict_insert(&self, p: &mut crate::IdPredictor) -> Key {
        p.predict_insert(&self.nodes)
    }

    /// Records a staged removal of `key` in the predictor.
    #[inline]
    pub fn predict_remove(&self, p: &mut crate::IdPredictor, key: Key) {
        p.predict_remove(key);
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the list has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// First element's key, if any.
    #[inline]
    pub fn head(&self) -> Option<Key> {
        self.head
    }

    /// Last element's key, if any.
    #[inline]
    pub fn tail(&self) -> Option<Key> {
        self.tail
    }

    /// Key of the element after `key`, if any.
    #[inline]
    pub fn next(&self, key: Key) -> Option<Key> {
        self.nodes.get(key).and_then(|n| n.next)
    }

    /// Key of the element before `key`, if any.
    #[inline]
    pub fn prev(&self, key: Key) -> Option<Key> {
        self.nodes.get(key).and_then(|n| n.prev)
    }

    /// Returns the element behind `key`, if live.
    #[inline]
    pub fn get(&self, key: Key) -> Option<&T> {
        self.nodes.get(key).map(|n| &n.value)
    }

    /// Returns the element behind `key` mutably, if live.
    #[inline]
    pub fn get_mut(&mut self, key: Key) -> Option<&mut T> {
        self.nodes.get_mut(key).map(|n| &mut n.value)
    }

    /// True if `key` is live in this list.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.nodes.contains(key)
    }

    /// Inserts at the front, returning the new key.
    pub fn push_front(&mut self, value: T) -> Key {
        let label = self.make_label_between(None, self.head);
        let key = self.nodes.insert(Node {
            value,
            prev: None,
            next: self.head,
            label,
        });
        match self.head {
            Some(old) => self.nodes[old].prev = Some(key),
            None => self.tail = Some(key),
        }
        self.head = Some(key);
        key
    }

    /// Inserts at the back, returning the new key.
    pub fn push_back(&mut self, value: T) -> Key {
        let label = self.make_label_between(self.tail, None);
        let key = self.nodes.insert(Node {
            value,
            prev: self.tail,
            next: None,
            label,
        });
        match self.tail {
            Some(old) => self.nodes[old].next = Some(key),
            None => self.head = Some(key),
        }
        self.tail = Some(key);
        key
    }

    /// Inserts `value` immediately after `after`.
    ///
    /// # Panics
    /// Panics if `after` is stale.
    pub fn insert_after(&mut self, after: Key, value: T) -> Key {
        assert!(self.nodes.contains(after), "insert_after on stale key");
        let next = self.nodes[after].next;
        let label = self.make_label_between(Some(after), next);
        let key = self.nodes.insert(Node {
            value,
            prev: Some(after),
            next,
            label,
        });
        self.nodes[after].next = Some(key);
        match next {
            Some(n) => self.nodes[n].prev = Some(key),
            None => self.tail = Some(key),
        }
        key
    }

    /// Inserts `value` immediately before `before`.
    ///
    /// # Panics
    /// Panics if `before` is stale.
    pub fn insert_before(&mut self, before: Key, value: T) -> Key {
        assert!(self.nodes.contains(before), "insert_before on stale key");
        let prev = self.nodes[before].prev;
        match prev {
            Some(p) => self.insert_after(p, value),
            None => self.push_front(value),
        }
    }

    /// Removes the element behind `key`, returning it if the key was live.
    pub fn remove(&mut self, key: Key) -> Option<T> {
        let node = self.nodes.remove(key)?;
        match node.prev {
            Some(p) => self.nodes[p].next = node.next,
            None => self.head = node.next,
        }
        match node.next {
            Some(n) => self.nodes[n].prev = node.prev,
            None => self.tail = node.prev,
        }
        Some(node.value)
    }

    /// Iterates keys front-to-back.
    pub fn keys(&self) -> KeyIter<'_, T> {
        KeyIter {
            list: self,
            cur: self.head,
        }
    }

    /// Iterates keys back-to-front.
    pub fn keys_rev(&self) -> impl Iterator<Item = Key> + '_ {
        std::iter::successors(self.tail, move |&k| self.prev(k))
    }

    /// Iterates `(key, &value)` front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &T)> {
        self.keys().map(move |k| (k, &self.nodes[k].value))
    }

    /// Position of `key` counted from the front (O(n); for tests/diagnostics).
    pub fn position(&self, key: Key) -> Option<usize> {
        self.keys().position(|k| k == key)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.head = None;
        self.tail = None;
    }
}

impl<T> std::ops::Index<Key> for LinkedArena<T> {
    type Output = T;
    #[inline]
    fn index(&self, key: Key) -> &T {
        self.get(key).expect("stale linked-arena key")
    }
}

impl<T> std::ops::IndexMut<Key> for LinkedArena<T> {
    #[inline]
    fn index_mut(&mut self, key: Key) -> &mut T {
        self.get_mut(key).expect("stale linked-arena key")
    }
}

/// Front-to-back key iterator for [`LinkedArena`].
pub struct KeyIter<'a, T> {
    list: &'a LinkedArena<T>,
    cur: Option<Key>,
}

impl<T> Iterator for KeyIter<'_, T> {
    type Item = Key;
    fn next(&mut self) -> Option<Key> {
        let k = self.cur?;
        self.cur = self.list.next(k);
        Some(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(l: &LinkedArena<i32>) -> Vec<i32> {
        l.iter().map(|(_, v)| *v).collect()
    }

    #[test]
    fn push_front_back() {
        let mut l = LinkedArena::new();
        l.push_back(2);
        l.push_front(1);
        l.push_back(3);
        assert_eq!(to_vec(&l), vec![1, 2, 3]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn insert_after_before() {
        let mut l = LinkedArena::new();
        let a = l.push_back(1);
        let c = l.push_back(3);
        let b = l.insert_after(a, 2);
        l.insert_before(a, 0);
        l.insert_after(c, 4);
        assert_eq!(to_vec(&l), vec![0, 1, 2, 3, 4]);
        assert_eq!(l.prev(b), Some(a));
        assert_eq!(l.next(b), Some(c));
    }

    #[test]
    fn remove_relinks() {
        let mut l = LinkedArena::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        let c = l.push_back(3);
        assert_eq!(l.remove(b), Some(2));
        assert_eq!(l.next(a), Some(c));
        assert_eq!(l.prev(c), Some(a));
        assert_eq!(to_vec(&l), vec![1, 3]);
        assert_eq!(l.remove(b), None);
        l.remove(a);
        l.remove(c);
        assert!(l.is_empty());
        assert_eq!(l.head(), None);
        assert_eq!(l.tail(), None);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = LinkedArena::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        let c = l.push_back(3);
        l.remove(a);
        assert_eq!(l.head(), Some(b));
        l.remove(c);
        assert_eq!(l.tail(), Some(b));
        assert_eq!(to_vec(&l), vec![2]);
    }

    #[test]
    fn reverse_iteration() {
        let mut l = LinkedArena::new();
        for i in 0..5 {
            l.push_back(i);
        }
        let rev: Vec<i32> = l.keys_rev().map(|k| l[k]).collect();
        assert_eq!(rev, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn position_reports_order() {
        let mut l = LinkedArena::new();
        let a = l.push_back(10);
        let b = l.push_front(20);
        assert_eq!(l.position(b), Some(0));
        assert_eq!(l.position(a), Some(1));
    }

    fn assert_labels_strictly_ascending<T>(l: &LinkedArena<T>) {
        let labels: Vec<u64> = l.keys().map(|k| l.order_label(k).unwrap()).collect();
        for w in labels.windows(2) {
            assert!(w[0] < w[1], "labels not ascending: {labels:?}");
        }
    }

    #[test]
    fn order_labels_reflect_order() {
        let mut l = LinkedArena::new();
        let b = l.push_back(2);
        let a = l.push_front(1);
        let c = l.insert_after(b, 3);
        let ab = l.insert_after(a, 15);
        assert!(l.is_before(a, ab));
        assert!(l.is_before(ab, b));
        assert!(l.is_before(b, c));
        assert!(!l.is_before(c, a));
        assert_labels_strictly_ascending(&l);
        assert_eq!(l.order_label(Key::DANGLING), None);
    }

    #[test]
    fn labels_survive_removal() {
        let mut l = LinkedArena::new();
        let ks: Vec<Key> = (0..10).map(|i| l.push_back(i)).collect();
        l.remove(ks[4]);
        l.remove(ks[0]);
        l.remove(ks[9]);
        assert_labels_strictly_ascending(&l);
        assert!(l.is_before(ks[1], ks[8]));
        assert_eq!(l.order_label(ks[4]), None);
    }

    #[test]
    fn same_spot_insertions_trigger_relabel_and_keep_order() {
        let mut l = LinkedArena::new();
        let first = l.push_back(0);
        let last = l.push_back(1_000_000);
        // Hammer the same gap: each midpoint insertion halves it, forcing
        // at least one whole-list relabel well before 200 insertions.
        let mut cur = first;
        for i in 1..=200 {
            cur = l.insert_after(cur, i);
        }
        assert!(l.relabel_count() > 0, "gap exhaustion must relabel");
        assert_labels_strictly_ascending(&l);
        assert!(l.is_before(first, cur));
        assert!(l.is_before(cur, last));
        let values: Vec<i32> = l.iter().map(|(_, v)| *v).collect();
        let mut expect: Vec<i32> = (0..=200).collect();
        expect.push(1_000_000);
        assert_eq!(values, expect);
    }

    #[test]
    fn front_insertions_exhaust_downward() {
        let mut l = LinkedArena::new();
        l.push_back(0);
        for i in 1..200 {
            l.push_front(i);
        }
        assert_labels_strictly_ascending(&l);
        let got: Vec<i32> = l.iter().map(|(_, v)| *v).collect();
        let mut want: Vec<i32> = (1..200).rev().collect();
        want.push(0);
        assert_eq!(got, want);
    }

    #[test]
    fn model_check_labels_against_positions() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(23);
        let mut l = LinkedArena::new();
        let mut model: Vec<Key> = Vec::new();
        for step in 0..3_000u32 {
            match rng.random_range(0..5) {
                0 => model.insert(0, l.push_front(step)),
                1 => model.push(l.push_back(step)),
                2 if !model.is_empty() => {
                    let i = rng.random_range(0..model.len());
                    model.insert(i + 1, l.insert_after(model[i], step));
                }
                3 if !model.is_empty() => {
                    let i = rng.random_range(0..model.len());
                    model.insert(i, l.insert_before(model[i], step));
                }
                4 if !model.is_empty() => {
                    let i = rng.random_range(0..model.len());
                    l.remove(model.remove(i));
                }
                _ => {}
            }
            // Labels must agree with list positions at every step.
            if step % 100 == 0 {
                assert_labels_strictly_ascending(&l);
            }
        }
        assert_labels_strictly_ascending(&l);
        for pair in model.windows(2) {
            assert!(l.is_before(pair[0], pair[1]));
        }
    }

    #[test]
    fn model_check_against_vec() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let mut l = LinkedArena::new();
        let mut model: Vec<(Key, u32)> = Vec::new();
        for step in 0..5_000u32 {
            match rng.random_range(0..5) {
                0 => {
                    let k = l.push_front(step);
                    model.insert(0, (k, step));
                }
                1 => {
                    let k = l.push_back(step);
                    model.push((k, step));
                }
                2 if !model.is_empty() => {
                    let i = rng.random_range(0..model.len());
                    let k = l.insert_after(model[i].0, step);
                    model.insert(i + 1, (k, step));
                }
                3 if !model.is_empty() => {
                    let i = rng.random_range(0..model.len());
                    let k = l.insert_before(model[i].0, step);
                    model.insert(i, (k, step));
                }
                4 if !model.is_empty() => {
                    let i = rng.random_range(0..model.len());
                    let (k, v) = model.remove(i);
                    assert_eq!(l.remove(k), Some(v));
                }
                _ => {}
            }
            assert_eq!(l.len(), model.len());
        }
        let got: Vec<u32> = l.iter().map(|(_, v)| *v).collect();
        let want: Vec<u32> = model.iter().map(|(_, v)| *v).collect();
        assert_eq!(got, want);
        let got_rev: Vec<u32> = l.keys_rev().map(|k| l[k]).collect();
        let mut want_rev = want.clone();
        want_rev.reverse();
        assert_eq!(got_rev, want_rev);
    }
}
