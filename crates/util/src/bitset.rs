//! A growable bitset.
//!
//! Used for visited/dirty marks in frontier DFS and for block-coverage
//! accounting in the dependency scans, where the universe (number of
//! blocks or partitions) is known but changes as the circuit is modified.

/// A dynamically sized bitset over `usize` indices.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Creates a bitset able to hold `n` bits without reallocating.
    pub fn with_capacity(n: usize) -> Self {
        BitSet {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        self.len
    }

    /// True if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`; returns true if the bit was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Clears bit `i`; returns true if the bit was set.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// True if bit `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Sets bits `[start, end)`.
    pub fn insert_range(&mut self, range: std::ops::Range<usize>) {
        for i in range {
            self.insert(i);
        }
    }

    /// Clears all bits, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterates set bit indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(100));
        assert!(s.contains(3));
        assert!(s.contains(100));
        assert!(!s.contains(4));
        assert_eq!(s.count(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.remove(1000));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iter_is_sorted() {
        let s: BitSet = [5usize, 1, 64, 63, 200].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 5, 63, 64, 200]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = BitSet::new();
        s.insert_range(0..300);
        assert_eq!(s.count(), 300);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(10));
    }

    #[test]
    fn model_check() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = BitSet::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            let i = rng.random_range(0..512usize);
            if rng.random_bool(0.5) {
                assert_eq!(s.insert(i), model.insert(i));
            } else {
                assert_eq!(s.remove(i), model.remove(&i));
            }
        }
        assert_eq!(s.count(), model.len());
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            model.into_iter().collect::<Vec<_>>()
        );
    }
}
