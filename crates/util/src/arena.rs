//! A generational arena.
//!
//! Slots are reused after removal, but every reuse bumps the slot's
//! generation, so stale [`Key`]s held by callers can never alias a newer
//! value: `get` on a stale key returns `None`. This is the property the
//! simulator relies on when partitions and gates are repeatedly inserted
//! and removed by circuit modifiers.

/// A stable handle into an [`Arena`].
///
/// A key is invalidated by removing the element it points to; it is never
/// invalidated by operations on other elements.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    index: u32,
    generation: u32,
}

impl Key {
    /// A key that is never valid in any arena.
    pub const DANGLING: Key = Key {
        index: u32::MAX,
        generation: u32::MAX,
    };

    /// The raw slot index. Only meaningful for diagnostics.
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Packs the key into a `u64` for storage in non-generic containers
    /// (e.g. a retained task-graph node's payload). Round-trips exactly
    /// through [`Key::from_bits`].
    #[inline]
    pub fn to_bits(self) -> u64 {
        (u64::from(self.index) << 32) | u64::from(self.generation)
    }

    /// Reverses [`Key::to_bits`]. The result is only meaningful for bit
    /// patterns produced by `to_bits` on a key of the same arena.
    #[inline]
    pub fn from_bits(bits: u64) -> Key {
        Key {
            index: (bits >> 32) as u32,
            generation: bits as u32,
        }
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}v{}", self.index, self.generation)
    }
}

#[derive(Clone)]
enum Slot<T> {
    /// `next_free` forms an intrusive free list terminated by `u32::MAX`.
    Free {
        next_free: u32,
        generation: u32,
    },
    Occupied {
        value: T,
        generation: u32,
    },
}

/// A generational arena with O(1) insert, remove and lookup.
#[derive(Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free_head: u32::MAX,
            len: 0,
        }
    }

    /// Creates an empty arena with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free_head: u32::MAX,
            len: 0,
        }
    }

    /// Number of live elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no element is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning its stable key.
    pub fn insert(&mut self, value: T) -> Key {
        self.len += 1;
        if self.free_head != u32::MAX {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            let (next_free, generation) = match *slot {
                Slot::Free {
                    next_free,
                    generation,
                } => (next_free, generation),
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            self.free_head = next_free;
            let generation = generation.wrapping_add(1);
            *slot = Slot::Occupied { value, generation };
            Key { index, generation }
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena overflow");
            self.slots.push(Slot::Occupied {
                value,
                generation: 0,
            });
            Key {
                index,
                generation: 0,
            }
        }
    }

    /// Removes the element behind `key`, returning it if the key was live.
    pub fn remove(&mut self, key: Key) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == key.generation => {
                let generation = *generation;
                let old = std::mem::replace(
                    slot,
                    Slot::Free {
                        next_free: self.free_head,
                        generation,
                    },
                );
                self.free_head = key.index;
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Returns a reference to the element behind `key`, if live.
    #[inline]
    pub fn get(&self, key: Key) -> Option<&T> {
        match self.slots.get(key.index as usize) {
            Some(Slot::Occupied { value, generation }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Returns a mutable reference to the element behind `key`, if live.
    #[inline]
    pub fn get_mut(&mut self, key: Key) -> Option<&mut T> {
        match self.slots.get_mut(key.index as usize) {
            Some(Slot::Occupied { value, generation }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// True if `key` points at a live element.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.get(key).is_some()
    }

    /// Returns mutable references to two distinct live elements.
    ///
    /// # Panics
    /// Panics if the keys are equal or either key is stale.
    pub fn get2_mut(&mut self, a: Key, b: Key) -> (&mut T, &mut T) {
        assert_ne!(a, b, "get2_mut with identical keys");
        assert!(self.contains(a) && self.contains(b), "stale key");
        let (lo, hi, swap) = if a.index < b.index {
            (a, b, false)
        } else {
            (b, a, true)
        };
        let (left, right) = self.slots.split_at_mut(hi.index as usize);
        let lo_ref = match &mut left[lo.index as usize] {
            Slot::Occupied { value, .. } => value,
            Slot::Free { .. } => unreachable!(),
        };
        let hi_ref = match &mut right[0] {
            Slot::Occupied { value, .. } => value,
            Slot::Free { .. } => unreachable!(),
        };
        if swap {
            (hi_ref, lo_ref)
        } else {
            (lo_ref, hi_ref)
        }
    }

    /// Iterates over `(key, &value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| match slot {
                Slot::Occupied { value, generation } => Some((
                    Key {
                        index: index as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Slot::Free { .. } => None,
            })
    }

    /// Iterates over `(key, &mut value)` pairs in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Key, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(index, slot)| match slot {
                Slot::Occupied { value, generation } => Some((
                    Key {
                        index: index as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Slot::Free { .. } => None,
            })
    }

    /// Iterates over live keys in slot order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = u32::MAX;
        self.len = 0;
    }
}

/// Predicts the keys future [`Arena::insert`] calls will return without
/// mutating — or cloning — the arena.
///
/// An arena reuses slots LIFO: `remove` pushes the slot onto the head of
/// the intrusive free list and `insert` pops the head, bumping the
/// slot's generation. A predictor replays exactly that discipline
/// against an *immutable* base arena: staged removals go onto a local
/// stack that shadows the head of the real free list, and predicted
/// inserts pop the local stack first, then walk the base arena's chain
/// via a cursor. Every operation is O(1); nothing is copied up front.
///
/// The predictions are only valid while the base arena is not mutated.
/// A transactional overlay ([`crate::LinkedArena`] nets, circuit gates)
/// holds the predictor for the duration of one staged batch and commits
/// by replaying the same operations on the real arena, which then hands
/// out precisely the predicted keys.
#[derive(Clone, Debug)]
pub struct IdPredictor {
    /// Staged removals (and staged re-removals of predicted inserts),
    /// LIFO: the top of this stack is reused before the base chain.
    staged_free: Vec<(u32, u32)>,
    /// Cursor into the base arena's free chain (`u32::MAX` = exhausted).
    chain: u32,
    /// First never-used slot index in the base arena.
    next_fresh: u32,
}

impl IdPredictor {
    /// Predicts the key the next `insert` on `base` would return, after
    /// the staged operations already predicted through `self`.
    pub fn predict_insert<T>(&mut self, base: &Arena<T>) -> Key {
        if let Some((index, generation)) = self.staged_free.pop() {
            return Key {
                index,
                generation: generation.wrapping_add(1),
            };
        }
        if self.chain != u32::MAX {
            let index = self.chain;
            let (next_free, generation) = match base.slots[index as usize] {
                Slot::Free {
                    next_free,
                    generation,
                } => (next_free, generation),
                Slot::Occupied { .. } => {
                    unreachable!("predictor chain points at occupied slot (base arena mutated?)")
                }
            };
            self.chain = next_free;
            return Key {
                index,
                generation: generation.wrapping_add(1),
            };
        }
        let index = self.next_fresh;
        self.next_fresh = index.checked_add(1).expect("arena overflow");
        Key {
            index,
            generation: 0,
        }
    }

    /// Records a staged removal of `key`, making its slot the next one a
    /// predicted insert reuses (the arena's LIFO discipline).
    pub fn predict_remove(&mut self, key: Key) {
        self.staged_free.push((key.index, key.generation));
    }
}

impl<T> Arena<T> {
    /// Creates an [`IdPredictor`] positioned at this arena's current
    /// free-list head. Valid until the arena is next mutated.
    pub fn predictor(&self) -> IdPredictor {
        IdPredictor {
            staged_free: Vec::new(),
            chain: self.free_head,
            next_fresh: self.slots.len() as u32,
        }
    }
}

impl<T> std::ops::Index<Key> for Arena<T> {
    type Output = T;
    #[inline]
    fn index(&self, key: Key) -> &T {
        self.get(key).expect("stale arena key")
    }
}

impl<T> std::ops::IndexMut<Key> for Arena<T> {
    #[inline]
    fn index_mut(&mut self, key: Key) -> &mut T {
        self.get_mut(key).expect("stale arena key")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Declares a newtype wrapper around [`Key`] for type-safe ids.
#[macro_export]
macro_rules! define_key {
    ($(#[$meta:meta])* $vis:vis struct $name:ident;) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        $vis struct $name(pub $crate::arena::Key);

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({:?})", stringify!($name), self.0)
            }
        }

        impl From<$crate::arena::Key> for $name {
            fn from(k: $crate::arena::Key) -> Self {
                $name(k)
            }
        }

        impl $name {
            /// A handle that is never valid.
            pub const DANGLING: $name = $name($crate::arena::Key::DANGLING);

            /// The underlying arena key.
            #[inline]
            pub fn key(self) -> $crate::arena::Key {
                self.0
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a = Arena::new();
        let k1 = a.insert("one");
        let k2 = a.insert("two");
        assert_eq!(a.len(), 2);
        assert_eq!(a[k1], "one");
        assert_eq!(a[k2], "two");
        assert_eq!(a.remove(k1), Some("one"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(k1), None);
        assert_eq!(a.remove(k1), None);
    }

    #[test]
    fn generation_prevents_aliasing() {
        let mut a = Arena::new();
        let k1 = a.insert(1);
        a.remove(k1);
        let k2 = a.insert(2);
        // Slot is reused but the old key must stay dead.
        assert_eq!(k1.index(), k2.index());
        assert_eq!(a.get(k1), None);
        assert_eq!(a[k2], 2);
    }

    #[test]
    fn free_list_reuses_lifo() {
        let mut a = Arena::new();
        let ks: Vec<_> = (0..8).map(|i| a.insert(i)).collect();
        for k in &ks {
            a.remove(*k);
        }
        assert!(a.is_empty());
        let k = a.insert(99);
        assert_eq!(k.index(), ks.last().unwrap().index());
    }

    #[test]
    fn iter_skips_holes() {
        let mut a = Arena::new();
        let k0 = a.insert(0);
        let _k1 = a.insert(1);
        let k2 = a.insert(2);
        a.remove(k0);
        a.remove(k2);
        let vals: Vec<_> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![1]);
        assert_eq!(a.keys().count(), 1);
    }

    #[test]
    fn get2_mut_disjoint() {
        let mut a = Arena::new();
        let k1 = a.insert(1);
        let k2 = a.insert(2);
        let (x, y) = a.get2_mut(k2, k1);
        std::mem::swap(x, y);
        assert_eq!(a[k1], 2);
        assert_eq!(a[k2], 1);
    }

    #[test]
    #[should_panic]
    fn get2_mut_same_key_panics() {
        let mut a = Arena::new();
        let k = a.insert(1);
        let _ = a.get2_mut(k, k);
    }

    #[test]
    fn clear_resets() {
        let mut a = Arena::new();
        let k = a.insert(5);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.get(k), None);
        let _ = a.insert(6);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn define_key_macro() {
        crate::define_key! {
            /// Test id.
            pub struct TestId;
        }
        let mut a = Arena::new();
        let id = TestId::from(a.insert(7));
        assert_eq!(a[id.key()], 7);
        assert_ne!(id, TestId::DANGLING);
        assert!(format!("{id:?}").starts_with("TestId"));
    }

    #[test]
    fn predictor_matches_real_inserts() {
        let mut a = Arena::new();
        let ks: Vec<_> = (0..6).map(|i| a.insert(i)).collect();
        a.remove(ks[1]);
        a.remove(ks[4]);
        // Free chain is now [4, 1]; fresh slots start at 6.
        let mut p = a.predictor();
        let mut predicted = Vec::new();
        // A staged remove shadows the chain head …
        p.predict_remove(ks[2]);
        for _ in 0..5 {
            predicted.push(p.predict_insert(&a));
        }
        // … replay the same ops for real and compare.
        a.remove(ks[2]);
        let got: Vec<_> = (0..5).map(|i| a.insert(100 + i)).collect();
        assert_eq!(predicted, got);
    }

    #[test]
    fn predictor_reuses_its_own_predictions_lifo() {
        let mut a = Arena::new();
        let k0 = a.insert(0);
        let mut p = a.predictor();
        p.predict_remove(k0);
        let k1 = p.predict_insert(&a); // reuses slot 0, generation 1
        p.predict_remove(k1);
        let k2 = p.predict_insert(&a); // reuses again, generation 2
        let fresh = p.predict_insert(&a);
        a.remove(k0);
        assert_eq!(a.insert(1), k1);
        a.remove(k1);
        assert_eq!(a.insert(2), k2);
        assert_eq!(a.insert(3), fresh);
    }

    #[test]
    fn stress_random_ops() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let mut a = Arena::new();
        let mut model: Vec<(Key, u64)> = Vec::new();
        for step in 0..10_000u64 {
            if model.is_empty() || rng.random_bool(0.6) {
                let k = a.insert(step);
                model.push((k, step));
            } else {
                let i = rng.random_range(0..model.len());
                let (k, v) = model.swap_remove(i);
                assert_eq!(a.remove(k), Some(v));
            }
            assert_eq!(a.len(), model.len());
        }
        for (k, v) in &model {
            assert_eq!(a.get(*k), Some(v));
        }
    }
}
