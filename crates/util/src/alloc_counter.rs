//! A counting global allocator for peak-memory reporting.
//!
//! The paper's Table III reports maximum resident set size per simulator
//! run. Inside a container RSS is noisy and page-granular, so the bench
//! harness instead installs [`CountingAlloc`] as the global allocator and
//! reads byte-precise live/peak counters, resetting the peak between runs.
//! State-vector storage dominates all three simulators, so the two metrics
//! track each other.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static CALLS: AtomicUsize = AtomicUsize::new(0);

/// Global allocator wrapper that tracks live and peak allocated bytes.
///
/// Install with:
/// ```ignore
/// #[global_allocator]
/// static ALLOC: qtask_util::alloc_counter::CountingAlloc = qtask_util::alloc_counter::CountingAlloc;
/// ```
pub struct CountingAlloc;

impl CountingAlloc {
    /// Currently allocated bytes.
    pub fn live_bytes() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// Peak allocated bytes since the last [`reset_peak`](Self::reset_peak).
    pub fn peak_bytes() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live byte count.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Total allocation calls (alloc/alloc_zeroed/realloc) since process
    /// start. The delta around a code region counts its heap traffic —
    /// how the zero-allocation hot-path tests measure "zero".
    pub fn alloc_calls() -> usize {
        CALLS.load(Ordering::Relaxed)
    }
}

fn on_alloc(size: usize) {
    CALLS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    // Racy max-update is fine: the peak is a diagnostic, and updates are
    // monotone under fetch_max.
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates allocation to `System`; only adds counter bookkeeping.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Reads this process's VmHWM (peak RSS) in bytes from `/proc`, as a
/// cross-check for the allocator-based metric. Returns `None` when
/// unavailable (non-Linux or restricted /proc).
pub fn peak_rss_bytes() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: usize = rest.trim().trim_end_matches(" kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    // The counting allocator is exercised for real in the bench harness,
    // where it is installed as #[global_allocator]. Here we only test the
    // pure accounting helpers.
    use super::*;

    #[test]
    fn counters_move() {
        let before = CountingAlloc::live_bytes();
        let calls_before = CountingAlloc::alloc_calls();
        on_alloc(1024);
        assert!(CountingAlloc::live_bytes() >= before + 1024);
        assert!(CountingAlloc::peak_bytes() >= before + 1024);
        assert!(CountingAlloc::alloc_calls() > calls_before);
        on_dealloc(1024);
        assert_eq!(CountingAlloc::live_bytes(), before);
    }

    #[test]
    fn reset_peak_tracks_live() {
        on_alloc(4096);
        CountingAlloc::reset_peak();
        let p = CountingAlloc::peak_bytes();
        assert_eq!(p, CountingAlloc::live_bytes());
        on_dealloc(4096);
    }

    #[test]
    fn rss_probe_parses() {
        // On Linux this should produce a sane nonzero figure.
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 1024);
        }
    }
}
