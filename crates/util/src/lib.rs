//! Support utilities shared across the qTask workspace.
//!
//! These are small, self-contained building blocks:
//!
//! * [`arena`] — a generational arena with stable keys, used for gates,
//!   nets, rows and partitions whose ids must survive unrelated removals.
//! * [`linked`] — an ordered arena (doubly-linked list over arena slots)
//!   used for the global row order and the net order, where the simulator
//!   needs O(1) insert-after / remove and bidirectional neighbour walks.
//! * [`bitset`] — a growable bitset used for dirty/visited marks during
//!   frontier DFS and coverage scans.
//! * [`disjoint`] — a guarded raw-pointer wrapper that lets parallel tasks
//!   write provably disjoint index sets of one buffer.
//! * [`alloc_counter`] — a counting global allocator used by the benchmark
//!   harness to report peak memory (the paper's `mem` column).

pub mod alloc_counter;
pub mod arena;
pub mod bitset;
pub mod disjoint;
pub mod linked;

pub use arena::{Arena, IdPredictor, Key};
pub use bitset::BitSet;
pub use disjoint::DisjointSlice;
pub use linked::LinkedArena;
