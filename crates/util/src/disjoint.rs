//! Disjoint parallel writes into a single buffer.
//!
//! qTask's intra-gate parallelism has several tasks of one partition write
//! amplitude pairs into the same freshly materialized blocks. The pair sets
//! are disjoint by construction (pairs are chunked by rank), but they
//! interleave within a block, so the buffer cannot be split into
//! contiguous `&mut` sub-slices. [`DisjointSlice`] encapsulates the raw
//! pointer dance behind a minimal unsafe surface, mirroring what rayon's
//! internals do for index-disjoint writes.

use std::marker::PhantomData;

/// A shareable view over `[T]` permitting concurrent writes to *disjoint*
/// index sets.
///
/// # Safety contract
///
/// Creating a `DisjointSlice` is safe; reading or writing through it is
/// `unsafe` and requires the caller to guarantee that, for the lifetime of
/// the view, no index is written by more than one thread and no index is
/// concurrently read and written. qTask upholds this because a partition's
/// tasks operate on rank-disjoint amplitude pairs and the blocks are
/// published to readers only after all tasks complete.
pub struct DisjointSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the view can be sent/shared between threads; actual accesses are
// gated behind unsafe methods whose contract forbids overlapping use.
unsafe impl<T: Send> Send for DisjointSlice<'_, T> {}
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    /// Wraps an exclusive slice. The borrow keeps the underlying storage
    /// alive and un-aliased by safe code for `'a`.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// `index < len`, and no other thread accesses `index` concurrently.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len, "DisjointSlice::write out of bounds");
        // SAFETY: caller guarantees bounds and exclusivity for this index.
        unsafe { self.ptr.add(index).write(value) }
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    /// `index < len`, and no other thread writes `index` concurrently.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len, "DisjointSlice::read out of bounds");
        // SAFETY: caller guarantees bounds and no concurrent writer.
        unsafe { *self.ptr.add(index) }
    }

    /// An exclusive sub-slice — how the batched kernels run whole
    /// contiguous index runs through the view.
    ///
    /// # Safety
    /// `range` in bounds, and for the returned borrow's lifetime no other
    /// access (through this or any copy of the view) overlaps `range`.
    #[inline]
    #[allow(clippy::mut_from_ref)] // the view is a token for disjoint &mut access
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        // SAFETY: caller guarantees bounds and exclusivity of the range.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }
}

impl<T> Clone for DisjointSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DisjointSlice<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip() {
        let mut buf = vec![0u64; 16];
        let view = DisjointSlice::new(&mut buf);
        for i in 0..16 {
            unsafe { view.write(i, (i * i) as u64) };
        }
        for i in 0..16 {
            assert_eq!(unsafe { view.read(i) }, (i * i) as u64);
        }
        // (DisjointSlice is Copy; the borrow ends at its last use.)
        assert_eq!(buf[3], 9);
    }

    #[test]
    fn slice_mut_roundtrip() {
        let mut buf = vec![0u64; 16];
        let view = DisjointSlice::new(&mut buf);
        unsafe {
            view.slice_mut(4..8).copy_from_slice(&[1, 2, 3, 4]);
        }
        assert_eq!(&buf[4..8], &[1, 2, 3, 4]);
        assert_eq!(buf[3], 0);
        assert_eq!(buf[8], 0);
    }

    #[test]
    fn parallel_disjoint_writes() {
        const N: usize = 1 << 14;
        let mut buf = vec![0u32; N];
        let view = DisjointSlice::new(&mut buf);
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    // Thread t owns indices with i % 4 == t: interleaved,
                    // not contiguous — the case &mut split can't express.
                    let mut i = t;
                    while i < N {
                        unsafe { view.write(i, i as u32 + 1) };
                        i += 4;
                    }
                });
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }
}
